#include "analysis/linter.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "model/components.hpp"
#include "model/operation.hpp"

namespace cohls::analysis {

namespace {

using diag::Diagnostic;
using diag::Note;
using diag::Severity;
using diag::Span;

std::string op_label(const io::SourceOperation& op) {
  return "operation " + std::to_string(op.id) + " ('" + op.spec.name + "')";
}

Span op_span(const io::SourceOperation& op) { return Span{op.line, op.column}; }

// -- structure: E101 duplicates, E102 undefined refs, E106 density, W104 ----

void structure_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  const auto& ops = ctx.source.operations;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto [it, inserted] = ctx.index_of.emplace(ops[i].id, i);
    if (!inserted) {
      Diagnostic d;
      d.code = diag::codes::kDuplicateOperationId;
      d.message = "duplicate operation id " + std::to_string(ops[i].id) +
                  " ('" + ops[i].spec.name + "')";
      d.span = op_span(ops[i]);
      const auto& first = ops[it->second];
      d.notes.push_back(Note{"first defined here as '" + first.spec.name + "'",
                             op_span(first)});
      d.fixit = "renumber the operation; ids must be dense and ascending";
      out.push_back(std::move(d));
    }
  }

  bool has_duplicates = false;
  for (const Diagnostic& d : out) {
    has_duplicates |= d.code == diag::codes::kDuplicateOperationId;
  }
  if (!has_duplicates) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].id != static_cast<long>(i)) {
        Diagnostic d;
        d.code = diag::codes::kNonDenseIds;
        d.message = "operation ids must be dense and ascending (expected " +
                    std::to_string(i) + ", got " + std::to_string(ops[i].id) +
                    ")";
        d.span = op_span(ops[i]);
        out.push_back(std::move(d));
        break;  // every later id mismatches too; one diagnostic is enough
      }
    }
  }

  for (const io::SourceOperation& op : ops) {
    std::set<long> seen;
    for (const long parent : op.parents) {
      if (!seen.insert(parent).second) {
        Diagnostic d;
        d.code = diag::codes::kDuplicateParent;
        d.severity = Severity::Warning;
        d.message = op_label(op) + " lists parent " + std::to_string(parent) +
                    " more than once";
        d.span = op_span(op);
        d.fixit = "drop the repeated id from parents=";
        out.push_back(std::move(d));
        continue;
      }
      if (ctx.index_of.find(parent) == ctx.index_of.end()) {
        Diagnostic d;
        d.code = diag::codes::kUndefinedReference;
        d.message = op_label(op) + " references undefined parent " +
                    std::to_string(parent);
        d.span = op_span(op);
        out.push_back(std::move(d));
      }
    }
  }
}

// -- cycles: E103 (with reported path) and forward-reference E106 -----------
//
// Runs over raw references, so it works even when build() would refuse the
// document. On success it publishes the graph facts every later graph pass
// consumes (adjacency + Algorithm 1 dependency layers).

struct CycleFinder {
  const std::vector<io::SourceOperation>& ops;
  const std::vector<std::vector<std::size_t>>& children;
  std::vector<int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::size_t> stack;
  std::vector<std::vector<std::size_t>> cycles;

  void dfs(std::size_t u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::size_t v : children[u]) {
      if (color[v] == 0) {
        dfs(v);
      } else if (color[v] == 1) {
        // Back edge u -> v: the cycle is the stack suffix starting at v.
        const auto begin =
            std::find(stack.begin(), stack.end(), v);
        cycles.emplace_back(begin, stack.end());
      }
    }
    stack.pop_back();
    color[u] = 2;
  }
};

void cycles_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  const auto& ops = ctx.source.operations;
  const std::size_t n = ops.size();

  // Resolved adjacency over first definitions; unresolved refs were already
  // reported by the structure pass and are simply dropped here.
  std::vector<std::vector<std::size_t>> parents(n);
  std::vector<std::vector<std::size_t>> children(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const long parent : ops[i].parents) {
      const auto it = ctx.index_of.find(parent);
      if (it == ctx.index_of.end() || it->second == i) {
        continue;  // undefined (E102) or self edge, handled below
      }
      parents[i].push_back(it->second);
      children[it->second].push_back(i);
    }
  }

  // Self references are one-edge cycles.
  for (std::size_t i = 0; i < n; ++i) {
    for (const long parent : ops[i].parents) {
      const auto it = ctx.index_of.find(parent);
      if (it != ctx.index_of.end() && it->second == i) {
        Diagnostic d;
        d.code = diag::codes::kDependencyCycle;
        d.message = "dependency cycle: " + std::to_string(ops[i].id) + " -> " +
                    std::to_string(ops[i].id) + " (operation is its own parent)";
        d.span = op_span(ops[i]);
        d.fixit = "remove " + std::to_string(ops[i].id) + " from its own parents=";
        out.push_back(std::move(d));
      }
    }
  }

  CycleFinder finder{ops, children, std::vector<int>(n, 0), {}, {}};
  for (std::size_t i = 0; i < n; ++i) {
    if (finder.color[i] == 0) {
      finder.dfs(i);
    }
  }
  // Operations known to sit on some cycle, so plain forward references can
  // be told apart from cyclic ones.
  std::set<std::size_t> on_cycle;
  for (const std::vector<std::size_t>& cycle : finder.cycles) {
    Diagnostic d;
    d.code = diag::codes::kDependencyCycle;
    std::ostringstream path;
    for (const std::size_t member : cycle) {
      path << ops[member].id << " -> ";
      on_cycle.insert(member);
    }
    path << ops[cycle.front()].id;
    d.message = "dependency cycle: " + path.str();
    // Anchor the diagnostic at the member whose parents= edge closes the
    // cycle (the deepest stack entry).
    d.span = op_span(ops[cycle.back()]);
    for (const std::size_t member : cycle) {
      d.notes.push_back(
          Note{op_label(ops[member]) + " defined here", op_span(ops[member])});
    }
    d.fixit = "break the cycle by removing one of the listed parent edges";
    out.push_back(std::move(d));
  }

  // Forward references that are not part of a cycle still violate the
  // parents-first contract of the text format.
  for (std::size_t i = 0; i < n; ++i) {
    for (const long parent : ops[i].parents) {
      const auto it = ctx.index_of.find(parent);
      if (it == ctx.index_of.end() || it->second <= i) {
        continue;
      }
      if (on_cycle.count(i) != 0 && on_cycle.count(it->second) != 0) {
        continue;  // already reported as part of a cycle
      }
      Diagnostic d;
      d.code = diag::codes::kNonDenseIds;
      d.message = op_label(ops[i]) + " references parent " +
                  std::to_string(parent) +
                  ", which is defined later; parents must come first";
      d.span = op_span(ops[i]);
      d.notes.push_back(Note{"parent defined here", op_span(ops[it->second])});
      d.fixit = "move the parent definition above its children";
      out.push_back(std::move(d));
    }
  }

  for (const Diagnostic& d : out) {
    if (d.code == diag::codes::kDuplicateOperationId) {
      return;  // operation identity is ambiguous; no graph to dry-run
    }
  }

  // Publish the graph facts, best-effort: forward edges (which every cycle
  // in a dense-ascending file must contain) are dropped, so the remaining
  // backward edges always form a DAG in file order and the dependency-phase
  // layers of Algorithm 1 (the indeterminate-ancestor depth) fall out of
  // one forward sweep even when cycle errors were reported above.
  ctx.graph_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    auto& ps = parents[i];
    ps.erase(std::remove_if(ps.begin(), ps.end(),
                            [i](std::size_t p) { return p > i; }),
             ps.end());
    auto& cs = children[i];
    cs.erase(std::remove_if(cs.begin(), cs.end(),
                            [i](std::size_t c) { return c < i; }),
             cs.end());
  }
  ctx.parents = std::move(parents);
  ctx.children = std::move(children);
  ctx.dependency_layer.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    int layer = 0;
    for (const std::size_t p : ctx.parents[i]) {
      const int via = ctx.dependency_layer[p] + (ops[p].spec.indeterminate ? 1 : 0);
      layer = std::max(layer, via);
    }
    ctx.dependency_layer[i] = layer;
  }
}

// -- durations: E105 --------------------------------------------------------

void durations_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  for (const io::SourceOperation& op : ctx.source.operations) {
    if (op.spec.duration.count() > 0) {
      continue;
    }
    Diagnostic d;
    d.code = diag::codes::kNonPositiveDuration;
    d.message = op_label(op) + " has non-positive " +
                (op.spec.indeterminate ? "minimum duration " : "duration ") +
                std::to_string(op.spec.duration.count());
    d.span = op_span(op);
    d.fixit = "set duration to a positive number of minutes";
    out.push_back(std::move(d));
  }
}

// -- binding: E104, with a nearest-device note ------------------------------
//
// Mirrors model::admissible_configs over the raw spec (an Operation cannot
// be constructed from an unbindable spec — its ctor enforces constraint
// (3)/(4) — which is exactly why the linter re-derives this here).

bool spec_bindable(const model::OperationSpec& spec) {
  for (const model::ContainerKind kind :
       {model::ContainerKind::Ring, model::ContainerKind::Chamber}) {
    if (spec.container.has_value() && *spec.container != kind) {
      continue;
    }
    for (const model::Capacity cap : model::kAllCapacities) {
      if (!model::capacity_allowed(kind, cap)) {
        continue;
      }
      if (spec.capacity.has_value() && *spec.capacity != cap) {
        continue;
      }
      return true;
    }
  }
  return false;
}

void binding_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  for (const io::SourceOperation& op : ctx.source.operations) {
    const model::OperationSpec& spec = op.spec;
    if (spec_bindable(spec)) {
      continue;
    }
    // The only statically unbindable combination: both container and
    // capacity pinned, and that capacity outside the container's range
    // (constraints (3)-(4)); accessories are an open set and always
    // satisfiable by some device.
    const model::ContainerKind kind = *spec.container;
    const model::Capacity want = *spec.capacity;
    model::Capacity nearest = want;
    int best = static_cast<int>(model::kAllCapacities.size()) + 1;
    for (const model::Capacity cap : model::kAllCapacities) {
      if (!model::capacity_allowed(kind, cap)) {
        continue;
      }
      const int dist = std::abs(static_cast<int>(cap) - static_cast<int>(want));
      if (dist < best) {
        best = dist;
        nearest = cap;
      }
    }
    const model::ContainerKind other = kind == model::ContainerKind::Ring
                                           ? model::ContainerKind::Chamber
                                           : model::ContainerKind::Ring;

    Diagnostic d;
    d.code = diag::codes::kUnbindableOperation;
    d.message = "no device can execute " + op_label(op) + ": a " +
                std::string(model::to_string(kind)) + " cannot provide " +
                std::string(model::to_string(want)) +
                " capacity (constraints (3)-(4))";
    d.span = op_span(op);
    std::string accessories =
        spec.accessories.empty()
            ? std::string("no accessories")
            : "accessories " + model::to_string(spec.accessories, ctx.source.registry);
    d.notes.push_back(Note{
        "nearest device: a " + std::string(model::to_string(kind)) + " at " +
            std::string(model::to_string(nearest)) + " capacity with " +
            accessories + " — it is missing only the requested " +
            std::string(model::to_string(want)) + " capacity",
        op_span(op)});
    std::string fix = "use capacity=" + std::string(model::to_string(nearest));
    if (model::capacity_allowed(other, want)) {
      fix += " or container=" + std::string(model::to_string(other));
    }
    d.fixit = std::move(fix);
    out.push_back(std::move(d));
  }
}

// -- threshold: E108 --------------------------------------------------------

void threshold_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  if (ctx.options.indeterminate_threshold > 0) {
    return;
  }
  for (const io::SourceOperation& op : ctx.source.operations) {
    if (!op.spec.indeterminate) {
      continue;
    }
    Diagnostic d;
    d.code = diag::codes::kNonPositiveThreshold;
    d.message = "layer threshold t = " +
                std::to_string(ctx.options.indeterminate_threshold) +
                " is not positive, but the assay contains indeterminate "
                "operations; Algorithm 1 cannot place " + op_label(op);
    d.span = op_span(op);
    d.fixit = "raise the layer threshold above zero";
    out.push_back(std::move(d));
    return;  // one diagnostic covers the whole document
  }
}

// -- accessories: W103 ------------------------------------------------------

void accessories_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  for (const io::SourceAccessory& accessory : ctx.source.accessories) {
    const model::AccessoryId id = ctx.source.registry.find(accessory.name);
    bool used = false;
    for (const io::SourceOperation& op : ctx.source.operations) {
      used |= op.spec.accessories.contains(id);
    }
    if (used) {
      continue;
    }
    Diagnostic d;
    d.code = diag::codes::kUnusedAccessory;
    d.severity = Severity::Warning;
    d.message = "accessory '" + accessory.name +
                "' is registered but never required by any operation";
    d.span = Span{accessory.line, 0};
    d.fixit = "remove the accessory directive or reference it in an "
              "operation's accessories={}";
    out.push_back(std::move(d));
  }
}

/// Indeterminate operations grouped by dependency layer, file order within
/// each group.
std::map<int, std::vector<std::size_t>> indeterminate_clusters(
    const PassContext& ctx) {
  std::map<int, std::vector<std::size_t>> clusters;
  for (std::size_t i = 0; i < ctx.source.operations.size(); ++i) {
    if (ctx.source.operations[i].spec.indeterminate) {
      clusters[ctx.dependency_layer[i]].push_back(i);
    }
  }
  return clusters;
}

// -- layering: W101 (dry run of Algorithm 1's dependency phase) -------------

void layering_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  const int t = ctx.options.indeterminate_threshold;
  if (t <= 0) {
    return;  // E108 already covers this configuration
  }
  const auto& ops = ctx.source.operations;
  for (const auto& [layer, members] : indeterminate_clusters(ctx)) {
    const int n = static_cast<int>(members.size());
    if (n <= t) {
      continue;
    }
    Diagnostic d;
    d.code = diag::codes::kOverThresholdCluster;
    d.severity = Severity::Warning;
    d.message = "dependency layer " + std::to_string(layer) + " holds " +
                std::to_string(n) +
                " indeterminate operations, above the layer threshold t = " +
                std::to_string(t) + "; the resource phase will evict " +
                std::to_string(n - t) +
                " of them into later layers and store their intermediates";
    d.span = op_span(ops[members.front()]);
    for (const std::size_t member : members) {
      d.notes.push_back(Note{op_label(ops[member]) + " is indeterminate in "
                             "dependency layer " + std::to_string(layer),
                             op_span(ops[member])});
    }
    d.fixit = "raise the threshold to at least " + std::to_string(n) +
              " or serialize the cluster with dependencies";
    out.push_back(std::move(d));
  }
}

// -- device-demand: E107 ----------------------------------------------------
//
// Same-layer indeterminate operations must occupy pairwise-distinct devices
// (constraint (14) family), and eviction only trims a cluster down to t. So
// min(cluster, t) concurrent devices is a sound static lower bound; when it
// exceeds |D|, no schedule exists regardless of what the solver tries.

void device_demand_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  const int t = ctx.options.indeterminate_threshold;
  if (t <= 0) {
    return;
  }
  const auto& ops = ctx.source.operations;
  for (const auto& [layer, members] : indeterminate_clusters(ctx)) {
    const int n = static_cast<int>(members.size());
    const int concurrent = std::min(n, t);
    if (concurrent <= ctx.options.max_devices) {
      continue;
    }
    Diagnostic d;
    d.code = diag::codes::kDeviceDemandExceedsBudget;
    d.message = "dependency layer " + std::to_string(layer) +
                " needs at least " + std::to_string(concurrent) +
                " concurrent devices for its indeterminate operations "
                "(cluster of " + std::to_string(n) + ", threshold t = " +
                std::to_string(t) + "), but the device budget |D| is " +
                std::to_string(ctx.options.max_devices);
    d.span = op_span(ops[members.front()]);

    // Per-capacity-class breakdown of the cluster's demand.
    std::map<std::string, int> by_class;
    for (const std::size_t member : members) {
      const model::OperationSpec& spec = ops[member].spec;
      std::string cls =
          (spec.container.has_value()
               ? std::string(model::to_string(*spec.container))
               : std::string("any")) +
          "/" +
          (spec.capacity.has_value()
               ? std::string(model::to_string(*spec.capacity))
               : std::string("any"));
      ++by_class[cls];
    }
    std::ostringstream breakdown;
    breakdown << "demand by device class:";
    for (const auto& [cls, cnt] : by_class) {
      breakdown << ' ' << cls << " x" << cnt << ',';
    }
    std::string text = breakdown.str();
    text.pop_back();  // trailing comma
    d.notes.push_back(Note{std::move(text), op_span(ops[members.front()])});
    d.fixit = "raise the device budget to at least " +
              std::to_string(concurrent) + " or lower the layer threshold";
    out.push_back(std::move(d));
  }
}

// -- storage: W102 ----------------------------------------------------------
//
// Every operation whose child lands in a later layer leaves an intermediate
// that must sit in storage while the boundary's cyberphysical decisions run.
// Distinct producing operations each occupy a container, so the per-boundary
// count of crossing producers is a storage lower bound against |D|.

void storage_pass(PassContext& ctx, std::vector<Diagnostic>& out) {
  const auto& ops = ctx.source.operations;
  int layer_count = 0;
  for (const int layer : ctx.dependency_layer) {
    layer_count = std::max(layer_count, layer + 1);
  }
  for (int boundary = 0; boundary + 1 < layer_count; ++boundary) {
    std::vector<std::size_t> producers;
    for (std::size_t p = 0; p < ops.size(); ++p) {
      if (ctx.dependency_layer[p] > boundary) {
        continue;
      }
      for (const std::size_t c : ctx.children[p]) {
        if (ctx.dependency_layer[c] > boundary) {
          producers.push_back(p);
          break;
        }
      }
    }
    const int stored = static_cast<int>(producers.size());
    if (stored <= ctx.options.max_devices) {
      continue;
    }
    Diagnostic d;
    d.code = diag::codes::kStoragePressure;
    d.severity = Severity::Warning;
    d.message = "at least " + std::to_string(stored) +
                " intermediates must be stored across the boundary between "
                "dependency layers " + std::to_string(boundary) + " and " +
                std::to_string(boundary + 1) + ", above the device budget "
                "|D| = " + std::to_string(ctx.options.max_devices);
    d.span = op_span(ops[producers.front()]);
    d.fixit = "raise the device budget or restructure dependencies to "
              "reduce crossing intermediates";
    out.push_back(std::move(d));
  }
}

}  // namespace

void PassManager::add(Pass pass) { passes_.push_back(std::move(pass)); }

LintReport PassManager::run(const io::AssaySource& source,
                            const AnalysisOptions& options) const {
  LintReport report;
  PassContext ctx{source, options, {}, false, {}, {}, {}};
  for (const Pass& pass : passes_) {
    if (pass.needs_graph && !ctx.graph_ok) {
      continue;
    }
    pass.run(ctx, report.diagnostics);
  }
  diag::sort_by_location(report.diagnostics);
  return report;
}

PassManager PassManager::default_passes() {
  PassManager manager;
  manager.add(Pass{"structure", false, structure_pass});
  manager.add(Pass{"cycles", false, cycles_pass});
  manager.add(Pass{"durations", false, durations_pass});
  manager.add(Pass{"binding", false, binding_pass});
  manager.add(Pass{"threshold", false, threshold_pass});
  manager.add(Pass{"accessories", false, accessories_pass});
  manager.add(Pass{"layering", true, layering_pass});
  manager.add(Pass{"device-demand", true, device_demand_pass});
  manager.add(Pass{"storage", true, storage_pass});
  return manager;
}

LintReport lint_assay(const io::AssaySource& source,
                      const AnalysisOptions& options) {
  return PassManager::default_passes().run(source, options);
}

LintReport lint_assay_text(const std::string& text,
                           const AnalysisOptions& options) {
  try {
    const io::AssaySource source = io::parse_assay_source(text);
    return lint_assay(source, options);
  } catch (const io::ParseError& e) {
    LintReport report;
    Diagnostic d;
    d.code = diag::codes::kParseError;
    d.span = Span{e.line(), 0};
    std::string message = e.what();
    // ParseError(line, msg) prefixes "line N: "; the span already carries
    // the line, so strip the prefix from the structured message.
    if (e.line() > 0) {
      const std::string prefix = "line " + std::to_string(e.line()) + ": ";
      if (message.rfind(prefix, 0) == 0) {
        message = message.substr(prefix.size());
      }
    }
    d.message = std::move(message);
    report.diagnostics.push_back(std::move(d));
    return report;
  }
}

}  // namespace cohls::analysis
