// Static assay analysis: a pass manager that lints a parsed-but-unchecked
// AssaySource against the chip configuration *before* any solver runs, so a
// malformed or provably infeasible spec is rejected with line-accurate
// structured diagnostics instead of surfacing as an MILP "infeasible" deep
// inside the engine.
//
// Passes (in run order; see the README rule catalog for every code):
//   structure     E101 duplicate ids, E102 undefined parent refs,
//                 E106 non-dense/forward ordering, W104 duplicate parents
//   cycles        E103 dependency cycles, with the cycle path reported
//   durations     E105 non-positive (minimum) durations
//   binding       E104 unbindable operations (container/capacity/accessory
//                 requirements no device configuration can satisfy), with a
//                 nearest-device note
//   threshold     E108 non-positive layer threshold t with indeterminates
//   accessories   W103 custom accessory registered but never used
//   layering      W101 over-t indeterminate clusters (dry-run of
//                 Algorithm 1's dependency phase)
//   device-demand E107 concurrent indeterminate device demand beyond |D|,
//                 with a per-capacity-class breakdown
//   storage       W102 crossing-intermediate storage lower bound beyond |D|
//
// The last three require a dependency graph and run best-effort: cycle and
// undefined-reference edges are dropped from the dry-run graph, and only
// duplicate-id errors (which make operation identity ambiguous) disable the
// graph passes entirely.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "diag/diagnostic.hpp"
#include "io/assay_source.hpp"

namespace cohls::analysis {

/// Chip-configuration facts the lint rules check demand against; mirror the
/// synthesis options the assay will later be solved under.
struct AnalysisOptions {
  /// |D|: maximal number of devices integrated on the chip.
  int max_devices = 25;
  /// The layer threshold t of Algorithm 1.
  int indeterminate_threshold = 10;
};

struct LintReport {
  std::vector<diag::Diagnostic> diagnostics;

  [[nodiscard]] bool has_errors() const { return diag::has_errors(diagnostics); }
  /// True when synthesis may proceed: no errors, and no warnings either when
  /// `warnings_as_errors` is set.
  [[nodiscard]] bool clean(bool warnings_as_errors = false) const {
    return !has_errors() &&
           (!warnings_as_errors ||
            diag::count(diagnostics, diag::Severity::Warning) == 0);
  }
};

/// Shared state handed to every pass. Graph-derived facts are only
/// populated when `graph_ok` (no duplicate/undefined/cycle errors).
struct PassContext {
  const io::AssaySource& source;
  const AnalysisOptions& options;

  /// Vector index (into source.operations) of the first definition of each
  /// id; later duplicates are not entered.
  std::map<long, std::size_t> index_of;

  bool graph_ok = false;
  /// Resolved adjacency by vector index (only defined, first-definition
  /// endpoints; populated when graph_ok).
  std::vector<std::vector<std::size_t>> parents;
  std::vector<std::vector<std::size_t>> children;
  /// Dependency-phase layer of Algorithm 1 (the indeterminate-ancestor
  /// depth) per operation; populated when graph_ok.
  std::vector<int> dependency_layer;
};

struct Pass {
  std::string name;
  /// Skipped when the dependency graph has structural errors.
  bool needs_graph = false;
  std::function<void(PassContext&, std::vector<diag::Diagnostic>&)> run;
};

/// Ordered pass pipeline. Custom passes can be appended; the default
/// pipeline implements the full rule catalog.
class PassManager {
 public:
  void add(Pass pass);
  [[nodiscard]] const std::vector<Pass>& passes() const { return passes_; }

  /// Runs every pass (skipping needs_graph passes on structurally broken
  /// inputs) and returns the location-sorted report.
  [[nodiscard]] LintReport run(const io::AssaySource& source,
                               const AnalysisOptions& options) const;

  [[nodiscard]] static PassManager default_passes();

 private:
  std::vector<Pass> passes_;
};

/// Lints with the default pass pipeline.
[[nodiscard]] LintReport lint_assay(const io::AssaySource& source,
                                    const AnalysisOptions& options = {});

/// Convenience: parse + lint. A lexical ParseError becomes a single
/// COHLS-E100 diagnostic instead of an exception.
[[nodiscard]] LintReport lint_assay_text(const std::string& text,
                                         const AnalysisOptions& options = {});

}  // namespace cohls::analysis
