// Exact branch-and-bound MILP solver over the bounded simplex. Substitutes
// for the paper's Gurobi dependency: exact on the small per-layer models,
// with node / time limits so the synthesizer can fall back to its heuristic
// when a layer is too large.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/model.hpp"
#include "util/cancellation.hpp"

namespace cohls::milp {

class NodeBoundProvider;

enum class MilpStatus {
  Optimal,     ///< proven optimal incumbent
  Feasible,    ///< an incumbent exists but the search hit a limit
  Infeasible,  ///< no integral solution exists
  NoSolution,  ///< search hit a limit before finding any incumbent
};

[[nodiscard]] std::string to_string(MilpStatus status);

enum class BranchingRule {
  /// Branch on the integer column whose relaxation value is farthest from
  /// integral. The exact historical rule; cheap and deterministic.
  MostFractional,
  /// Pseudocost branching with a reliability fallback: while a column has no
  /// observed branching history on one of its sides, it is scored by its
  /// fractionality (so the first descents behave like most-fractional and
  /// *initialize* the pseudocosts); once both sides are reliable the column
  /// with the best product of estimated bound degradations wins. History is
  /// kept per search worker, so threads stay lock-free and threads == 1
  /// stays bit-reproducible.
  Pseudocost,
};

struct MilpOptions {
  /// Maximum branch-and-bound nodes (LP solves); <= 0 means unlimited. With
  /// threads > 1 the budget is global across the worker team (enforced with
  /// relaxed atomics), so a parallel solve expands the same number of nodes
  /// as a sequential one.
  long max_nodes = 200000;
  /// Branch-and-bound worker threads; values < 1 are treated as 1. The
  /// default runs the exact sequential depth-first search. With N > 1, N
  /// workers explore the tree through per-worker node deques with work
  /// stealing and a shared incumbent; each worker owns a private LP
  /// workspace (cloned off one immutable matrix) so child nodes still
  /// re-solve warm from their parent's basis. Parallel search is exact —
  /// status and optimal objective match the sequential solver — but when
  /// several optima tie, or when a budget truncates the search, the
  /// incumbent *vector* may differ across worker counts and runs.
  int threads = 1;
  /// Skip the warm-start fast path when the model's variable count plus
  /// constraint count is at most this (<= 0 disables the heuristic). Tiny
  /// models typically solve at the root without branching, where root
  /// presolve and the persistent revised workspace (CSC build, eta-file
  /// refactorization state) cost more than warm re-solves can ever recoup;
  /// below the threshold each node gets a one-shot cold solve with the
  /// configured simplex algorithm instead. Only applies when the Revised
  /// algorithm is selected.
  int cold_solve_threshold = 32;
  /// Wall-clock budget in seconds; <= 0 means unlimited.
  double time_limit_seconds = 30.0;
  /// Integrality tolerance.
  double integrality_tolerance = 1e-6;
  /// Stop when incumbent is within this absolute gap of the best bound.
  double absolute_gap = 1e-6;
  /// Optional known-feasible point used as the initial incumbent.
  std::optional<std::vector<double>> warm_start;
  /// Try rounding fractional LP relaxations into incumbents.
  bool enable_rounding_heuristic = true;
  /// LP solver configuration for node relaxations. With the (default)
  /// Revised algorithm, child nodes re-solve with the dual simplex from
  /// their parent's optimal basis; the Dense algorithm solves every node
  /// cold and exists for differential testing.
  lp::SimplexOptions simplex{};
  /// Run lp::presolve once at the root (fixed-column elimination, empty and
  /// singleton rows) and branch in the reduced space.
  bool presolve = true;
  /// Optional combinatorial node-bound provider (see milp/bounds.hpp). When
  /// set, every node evaluates the provider against its effective variable
  /// bounds (in ORIGINAL model space) before its LP relaxation; the node
  /// prunes without an LP solve when the combinatorial bound already meets
  /// the incumbent, and otherwise the node bound is the max of the two.
  /// Shared read-only across all search workers.
  std::shared_ptr<const NodeBoundProvider> bounds;
  /// Depth-first rounding/fixing dive at the root, before any fan-out: fix
  /// the least-fractional integer column to its nearest value, re-solve warm,
  /// backtrack once per column on infeasibility. A successful dive installs a
  /// feasible incumbent every worker can prune against from node 1. Dive LP
  /// solves are *not* charged against max_nodes.
  bool dive = true;
  /// Variable-selection rule at branch time.
  BranchingRule branching = BranchingRule::Pseudocost;
  /// Cooperative cancellation: polled between nodes. A cancelled solve
  /// returns like a limit-hit one (Feasible with the incumbent so far, or
  /// NoSolution) with `cancelled` set in the solution.
  CancellationToken cancel{};
};

struct MilpSolution {
  MilpStatus status = MilpStatus::NoSolution;
  double objective = 0.0;
  std::vector<double> values;  ///< incumbent when status is Optimal/Feasible
  double best_bound = -kBigBound;
  long nodes = 0;
  /// True when the search stopped because MilpOptions::cancel fired.
  bool cancelled = false;

  // LP work performed across all node relaxations, for the engine metrics.
  long lp_pivots = 0;           ///< simplex pivots (primal + dual)
  long lp_warm_solves = 0;      ///< node re-solves warm-started from a parent basis
  long lp_cold_solves = 0;      ///< from-scratch two-phase solves
  long lp_refactorizations = 0; ///< basis refactorizations in the revised solver

  // Bound-driven search summary.
  long bound_prunes = 0;   ///< nodes pruned by the combinatorial bound, no LP solve
  long cutoff_prunes = 0;  ///< node LPs cut off early by the dual objective cutoff
  long dive_lp_solves = 0; ///< LP solves spent inside the root dive (not nodes)
  bool dive_found_incumbent = false;  ///< the root dive installed an incumbent

  // Parallel-search work summary (left at defaults when threads == 1).
  int threads_used = 1;        ///< worker team size the solve actually ran with
  long steals = 0;             ///< nodes taken from another worker's deque
  long incumbent_updates = 0;  ///< accepted shared-incumbent improvements
  /// Offers that reached the incumbent lock but lost to a concurrent update
  /// (a direct measure of incumbent contention between workers).
  long incumbent_races = 0;
  double worker_idle_seconds = 0.0;  ///< summed wall time workers waited for work

  static constexpr double kBigBound = 1e100;
};

/// Solves `model` (a minimization) exactly, up to the configured limits.
[[nodiscard]] MilpSolution solve_milp(const MilpModel& model, const MilpOptions& options = {});

}  // namespace cohls::milp
