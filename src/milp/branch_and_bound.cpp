#include "milp/branch_and_bound.hpp"

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "lp/presolve.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "milp/bounds.hpp"
#include "milp/dive.hpp"
#include "util/check.hpp"

namespace cohls::milp {

std::string to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::Optimal: return "Optimal";
    case MilpStatus::Feasible: return "Feasible";
    case MilpStatus::Infeasible: return "Infeasible";
    case MilpStatus::NoSolution: return "NoSolution";
  }
  return "Unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

/// One bound tightening on the branch path. Children share their parent's
/// suffix, so a node's bounds are O(depth) deltas instead of the O(n)
/// lower/upper vector copies the solver used to carry per node. The stored
/// bounds are absolute (already intersected with everything above them on
/// the path), so replaying root-to-leaf in order reproduces the node's
/// effective bounds exactly. The shared_ptr spine is refcounted, so a
/// subtree stolen by another worker keeps its path alive no matter when the
/// victim pops (and drops) its own nodes.
struct PathStep {
  lp::Col col = -1;
  double lower = 0.0;
  double upper = 0.0;
  std::shared_ptr<const PathStep> parent;
};

struct Node {
  std::shared_ptr<const PathStep> path;    ///< bound deltas from the root
  std::shared_ptr<const lp::Basis> basis;  ///< parent's optimal basis, if any
  double parent_bound = 0.0;  ///< parent's node bound, for pruning before solving
  // Branching metadata for pseudocost learning: which column the parent
  // branched on to create this node, the column's fractional part at the
  // parent's relaxation, and which side this child is.
  lp::Col branch_col = -1;
  double branch_frac = 0.0;
  bool branch_up = false;
};

struct BoundUndo {
  lp::Col col;
  double lower;
  double upper;
};

/// Everything one search thread needs to solve node relaxations: a private
/// LP workspace (revised simplex sharing the immutable CSC matrix, or a
/// cold scratch model), the effective-bound arrays of the node being
/// solved, and the path/undo scratch. Never shared between threads.
struct Workspace {
  std::optional<lp::RevisedSimplex> revised;
  lp::LpModel scratch;  ///< cold-solve path: bounds applied in place, one-shot solve_lp per node
  std::vector<double> cur_lower;  ///< effective bounds of the node being solved
  std::vector<double> cur_upper;
  std::vector<const PathStep*> path_buffer;
  std::vector<BoundUndo> undo_stack;
  long cold_scratch_solves = 0;
  long cold_scratch_pivots = 0;

  /// ORIGINAL-space mirror of the node box, maintained alongside cur_lower /
  /// cur_upper when a NodeBoundProvider is attached (the provider's contract
  /// is original model space; presolve-fixed columns sit collapsed at their
  /// fixed value). Empty when no provider is configured.
  std::vector<double> orig_lower;
  std::vector<double> orig_upper;

  /// Per-worker pseudocost history (objective degradation per unit of
  /// fractionality, by branching side). Worker-private so the parallel
  /// search stays lock-free; empty unless pseudocost branching is selected.
  std::vector<double> pc_down_sum;
  std::vector<double> pc_up_sum;
  std::vector<long> pc_down_count;
  std::vector<long> pc_up_count;
};

/// Per-worker slice of the parallel search result, merged after the join.
struct WorkerReport {
  lp::SolveStats lp{};
  long cold_scratch_solves = 0;
  long cold_scratch_pivots = 0;
  double idle_seconds = 0.0;
};

/// A worker's node deque. The owner pushes and pops at the back (depth
/// first, so the first child usually re-solves against an unchanged
/// factorization); thieves take from the front, which holds the nodes
/// closest to the root — the largest subtrees, amortizing the thief's
/// refactorization over the most work.
struct WorkerDeque {
  util::Mutex mutex;
  std::deque<Node> nodes COHLS_GUARDED_BY(mutex);
};

/// State shared by the worker team: the deques, the incumbent, the global
/// budgets and the outcome flags. Budget counters use relaxed atomics — the
/// queues' mutexes order the node hand-offs; the counters only need
/// eventual agreement, not ordering.
struct SharedSearch {
  explicit SharedSearch(int workers) : queues(static_cast<std::size_t>(workers)) {}

  std::vector<WorkerDeque> queues;
  /// Nodes queued or currently being expanded; the team is done when 0.
  std::atomic<long> open_nodes{0};
  std::atomic<long> nodes{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};
  std::atomic<bool> exhausted{true};
  std::atomic<bool> root_infeasible{false};
  std::atomic<bool> any_lp_solved{false};

  /// Lock-free mirror of the incumbent value for pruning reads; the value
  /// vector itself (and the authoritative value) live under the mutex.
  std::atomic<bool> has_incumbent{false};
  std::atomic<double> best_value{std::numeric_limits<double>::infinity()};
  util::Mutex incumbent_mutex;
  std::vector<double> incumbent COHLS_GUARDED_BY(incumbent_mutex);
  double incumbent_value COHLS_GUARDED_BY(incumbent_mutex) =
      std::numeric_limits<double>::infinity();

  /// Root relaxation bound, written once by whichever worker solves the root.
  std::atomic<double> root_bound{-MilpSolution::kBigBound};

  std::atomic<long> steals{0};
  std::atomic<long> incumbent_updates{0};
  std::atomic<long> incumbent_races{0};
  std::atomic<long> bound_prunes{0};
  std::atomic<long> cutoff_prunes{0};
  std::atomic<long> dive_lp_solves{0};
  std::atomic<bool> dive_found{false};

  /// First worker exception, rethrown on the calling thread after the join.
  util::Mutex error_mutex;
  std::exception_ptr error COHLS_GUARDED_BY(error_mutex);
};

class Solver {
 public:
  Solver(const MilpModel& model, const MilpOptions& options)
      : model_(model), options_(options), deadline_set_(options.time_limit_seconds > 0) {
    if (deadline_set_) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(options.time_limit_seconds));
    }
  }

  MilpSolution run() {
    MilpSolution out;
    if (!prepare()) {
      out.status = MilpStatus::Infeasible;
      return out;
    }
    seed_warm_start();
    if (options_.threads > 1) {
      return run_parallel(options_.threads);
    }
    return run_sequential();
  }

 private:
  // --- sequential search (threads == 1; the exact historical behavior) ------

  MilpSolution run_sequential() {
    MilpSolution out;
    std::vector<Node> stack;
    stack.push_back(Node{nullptr, nullptr, -MilpSolution::kBigBound});
    double global_bound = -MilpSolution::kBigBound;
    bool exhausted = true;
    bool root_infeasible_proven = false;
    bool any_lp_solved = false;

    while (!stack.empty()) {
      if (options_.cancel.can_cancel() && options_.cancel.cancelled()) {
        exhausted = false;
        cancelled_ = true;
        break;
      }
      if (limit_reached()) {
        exhausted = false;
        break;
      }
      Node node = std::move(stack.back());
      stack.pop_back();
      if (has_incumbent_ &&
          node.parent_bound >= incumbent_value_ - options_.absolute_gap) {
        continue;  // cannot improve on the incumbent
      }

      ++nodes_;
      const bool at_root = node.path == nullptr;
      apply_path(ws_, node.path);

      // Combinatorial bound first: it needs no LP solve, so a near-root node
      // it prunes costs almost nothing.
      const double comb = combinatorial_bound(ws_);
      if (comb == std::numeric_limits<double>::infinity()) {
        ++bound_prunes_;
        if (at_root) {
          root_infeasible_proven = true;
        }
        undo_path(ws_);
        continue;
      }
      if (has_incumbent_ && comb >= incumbent_value_ - options_.absolute_gap) {
        ++bound_prunes_;
        undo_path(ws_);
        continue;
      }
      if (at_root) {
        global_bound = std::max(global_bound, comb);
      }

      set_lp_cutoff(ws_, at_root,
                    has_incumbent_ ? incumbent_value_
                                   : std::numeric_limits<double>::infinity());
      const lp::LpSolution relax = solve_node(ws_, node);
      if (relax.status == lp::LpStatus::CutoffReached) {
        // The dual objective is a valid lower bound, so this is an exact
        // prune — and still a usable pseudocost observation.
        update_pseudocost(ws_, node, relax.objective);
        ++cutoff_prunes_;
        undo_path(ws_);
        continue;
      }
      if (relax.status == lp::LpStatus::Infeasible) {
        if (at_root) {
          root_infeasible_proven = true;
        }
        undo_path(ws_);
        continue;
      }
      if (relax.status == lp::LpStatus::Unbounded) {
        // An unbounded relaxation of a bounded-variable MILP means free
        // continuous directions; report the best we have.
        exhausted = false;
        undo_path(ws_);
        continue;
      }
      if (relax.status != lp::LpStatus::Optimal) {
        exhausted = false;  // iteration limit: bound unknown, cannot prune
        undo_path(ws_);
        continue;
      }
      any_lp_solved = true;
      update_pseudocost(ws_, node, relax.objective);
      const double bound = std::max(relax.objective, comb);
      if (at_root) {
        global_bound = std::max(global_bound, bound);
      }
      if (has_incumbent_ && bound >= incumbent_value_ - options_.absolute_gap) {
        undo_path(ws_);
        continue;
      }

      const int branch_col = select_branch(ws_, relax.values);
      if (branch_col < 0) {
        // Integral: new incumbent.
        offer_incumbent(relax.values);
        undo_path(ws_);
        continue;
      }
      if (options_.enable_rounding_heuristic) {
        try_rounding(relax.values);
      }

      // Children re-solve from this node's optimal basis with the dual
      // simplex after the single branching-bound change. Snapshot it before
      // the root dive below re-solves (and re-bases) the workspace.
      std::shared_ptr<const lp::Basis> child_basis;
      if (use_revised_) {
        child_basis = std::make_shared<lp::Basis>(ws_.revised->basis());
      }
      if (at_root && options_.dive && use_revised_) {
        run_root_dive(ws_, relax, nullptr);
        if (has_incumbent_ && bound >= incumbent_value_ - options_.absolute_gap) {
          undo_path(ws_);
          continue;  // the dive's incumbent already matches the root bound
        }
      }
      const std::size_t bc = static_cast<std::size_t>(branch_col);
      const double value = relax.values[bc];
      const double floor_value = std::floor(value);
      const double frac = value - floor_value;
      const double down_hi = std::min(ws_.cur_upper[bc], floor_value);
      const double up_lo = std::max(ws_.cur_lower[bc], floor_value + 1.0);
      Node down{std::make_shared<PathStep>(
                    PathStep{branch_col, ws_.cur_lower[bc], down_hi, node.path}),
                child_basis, bound, branch_col, frac, false};
      Node up{std::make_shared<PathStep>(
                  PathStep{branch_col, up_lo, ws_.cur_upper[bc], node.path}),
              child_basis, bound, branch_col, frac, true};
      const bool down_viable = ws_.cur_lower[bc] <= down_hi;
      const bool up_viable = up_lo <= ws_.cur_upper[bc];
      undo_path(ws_);
      // Depth-first; explore the child nearer the fractional value first
      // (push it last so it pops first).
      const bool up_first = value - floor_value > 0.5;
      if (down_viable && !up_first) {
        stack.push_back(std::move(down));
      }
      if (up_viable) {
        stack.push_back(std::move(up));
      }
      if (down_viable && up_first) {
        stack.push_back(std::move(down));
      }
    }

    out.nodes = nodes_;
    out.cancelled = cancelled_;
    out.bound_prunes = bound_prunes_;
    out.cutoff_prunes = cutoff_prunes_;
    out.dive_lp_solves = dive_lp_solves_;
    out.dive_found_incumbent = dive_found_;
    collect_lp_stats(out);
    finish(out, exhausted, global_bound, root_infeasible_proven, any_lp_solved);
    return out;
  }

  // --- parallel search (threads > 1) ----------------------------------------

  MilpSolution run_parallel(int threads) {
    SharedSearch shared(threads);
    if (has_incumbent_) {
      // No worker is running yet; the locks below are uncontended and exist
      // so the thread-safety analysis sees every guarded access locked.
      util::MutexLock lock(shared.incumbent_mutex);
      shared.incumbent = incumbent_;
      shared.incumbent_value = incumbent_value_;
      shared.best_value.store(incumbent_value_, std::memory_order_relaxed);
      shared.has_incumbent.store(true, std::memory_order_release);
    }
    {
      util::MutexLock lock(shared.queues[0].mutex);
      shared.queues[0].nodes.push_back(
          Node{nullptr, nullptr, -MilpSolution::kBigBound});
    }
    shared.open_nodes.store(1, std::memory_order_release);

    std::vector<WorkerReport> reports(static_cast<std::size_t>(threads));
    std::vector<std::thread> team;
    team.reserve(static_cast<std::size_t>(threads) - 1);
    for (int t = 1; t < threads; ++t) {
      team.emplace_back([this, &shared, &reports, t] {
        worker_main(shared, t, reports[static_cast<std::size_t>(t)]);
      });
    }
    worker_main(shared, 0, reports[0]);
    for (std::thread& member : team) {
      member.join();
    }
    {
      // Workers have joined; the lock keeps the analysis exact.
      util::MutexLock lock(shared.error_mutex);
      if (shared.error != nullptr) {
        std::rethrow_exception(shared.error);
      }
    }

    MilpSolution out;
    out.nodes = shared.nodes.load(std::memory_order_relaxed);
    out.cancelled = shared.cancelled.load(std::memory_order_relaxed);
    out.threads_used = threads;
    out.steals = shared.steals.load(std::memory_order_relaxed);
    out.incumbent_updates = shared.incumbent_updates.load(std::memory_order_relaxed);
    out.incumbent_races = shared.incumbent_races.load(std::memory_order_relaxed);
    out.bound_prunes = shared.bound_prunes.load(std::memory_order_relaxed);
    out.cutoff_prunes = shared.cutoff_prunes.load(std::memory_order_relaxed);
    out.dive_lp_solves = shared.dive_lp_solves.load(std::memory_order_relaxed);
    out.dive_found_incumbent = shared.dive_found.load(std::memory_order_relaxed);
    lp::SolveStats lp_total;
    for (const WorkerReport& report : reports) {
      out.worker_idle_seconds += report.idle_seconds;
      lp_total.accumulate(report.lp);
      out.lp_pivots += report.cold_scratch_pivots;
      out.lp_cold_solves += report.cold_scratch_solves;
    }
    if (use_revised_) {
      out.lp_pivots = lp_total.primal_pivots + lp_total.dual_pivots;
      out.lp_warm_solves = lp_total.warm_solves;
      out.lp_cold_solves = lp_total.cold_solves;
      out.lp_refactorizations = lp_total.refactorizations;
    }

    has_incumbent_ = shared.has_incumbent.load(std::memory_order_acquire);
    {
      util::MutexLock lock(shared.incumbent_mutex);
      incumbent_ = std::move(shared.incumbent);
      incumbent_value_ = shared.incumbent_value;
    }
    finish(out, shared.exhausted.load(std::memory_order_relaxed),
           shared.root_bound.load(std::memory_order_relaxed),
           shared.root_infeasible.load(std::memory_order_relaxed),
           shared.any_lp_solved.load(std::memory_order_relaxed));
    return out;
  }

  void worker_main(SharedSearch& shared, int id, WorkerReport& report) {
    try {
      // Worker 0 inherits the root workspace prepare() built (ws_ stays in
      // place: the other workers clone its revised instance concurrently);
      // the rest get private clones sharing the immutable CSC matrix.
      std::optional<Workspace> local;
      if (id != 0) {
        local.emplace(make_worker_workspace());
      }
      Workspace& ws = id == 0 ? ws_ : *local;
      int spins = 0;
      while (!shared.stop.load(std::memory_order_acquire)) {
        Node node;
        if (!pop_or_steal(shared, id, node)) {
          if (shared.open_nodes.load(std::memory_order_acquire) == 0) {
            break;  // tree fully explored
          }
          const Clock::time_point idle_begin = Clock::now();
          if (spins < 64) {
            ++spins;
            std::this_thread::yield();
          } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          report.idle_seconds +=
              std::chrono::duration<double>(Clock::now() - idle_begin).count();
          continue;
        }
        spins = 0;
        process_node(shared, ws, id, node);
        shared.open_nodes.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (ws.revised.has_value()) {
        report.lp = ws.revised->total_stats();
      }
      report.cold_scratch_solves = ws.cold_scratch_solves;
      report.cold_scratch_pivots = ws.cold_scratch_pivots;
    } catch (...) {
      util::MutexLock lock(shared.error_mutex);
      if (shared.error == nullptr) {
        shared.error = std::current_exception();
      }
      shared.exhausted.store(false, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_release);
    }
  }

  /// A fresh workspace for workers 1..N-1, sharing ws_'s immutable CSC
  /// matrix read-only (cold-solve path: a private scratch model copy).
  Workspace make_worker_workspace() {
    Workspace ws;
    if (use_revised_) {
      ws.revised.emplace(ws_.revised->clone_workspace());
    } else {
      ws.scratch = reduced_.lp();
    }
    const int n = reduced_.variable_count();
    ws.cur_lower.resize(static_cast<std::size_t>(n));
    ws.cur_upper.resize(static_cast<std::size_t>(n));
    for (lp::Col c = 0; c < n; ++c) {
      ws.cur_lower[static_cast<std::size_t>(c)] = reduced_.lp().lower_bound(c);
      ws.cur_upper[static_cast<std::size_t>(c)] = reduced_.lp().upper_bound(c);
    }
    init_workspace_extras(ws);
    return ws;
  }

  bool pop_or_steal(SharedSearch& shared, int id, Node& out) {
    WorkerDeque& own = shared.queues[static_cast<std::size_t>(id)];
    {
      util::MutexLock lock(own.mutex);
      if (!own.nodes.empty()) {
        out = std::move(own.nodes.back());
        own.nodes.pop_back();
        return true;
      }
    }
    const int team = static_cast<int>(shared.queues.size());
    for (int k = 1; k < team; ++k) {
      WorkerDeque& victim = shared.queues[static_cast<std::size_t>((id + k) % team)];
      util::MutexLock lock(victim.mutex);
      if (!victim.nodes.empty()) {
        out = std::move(victim.nodes.front());
        victim.nodes.pop_front();
        shared.steals.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// The parallel twin of the sequential loop body; identical pruning,
  /// branching and accounting, against the shared incumbent and budgets.
  void process_node(SharedSearch& shared, Workspace& ws, int id, Node& node) {
    if (options_.cancel.can_cancel() && options_.cancel.cancelled()) {
      shared.cancelled.store(true, std::memory_order_relaxed);
      shared.exhausted.store(false, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_release);
      return;
    }
    if (deadline_set_ && Clock::now() >= deadline_) {
      shared.exhausted.store(false, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_release);
      return;
    }
    if (shared.has_incumbent.load(std::memory_order_acquire) &&
        node.parent_bound >=
            shared.best_value.load(std::memory_order_relaxed) - options_.absolute_gap) {
      return;  // cannot improve on the incumbent
    }
    const long sequence = shared.nodes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.max_nodes > 0 && sequence > options_.max_nodes) {
      shared.nodes.fetch_sub(1, std::memory_order_relaxed);
      shared.exhausted.store(false, std::memory_order_relaxed);
      shared.stop.store(true, std::memory_order_release);
      return;
    }

    const bool at_root = node.path == nullptr;
    apply_path(ws, node.path);

    const double comb = combinatorial_bound(ws);
    if (comb == std::numeric_limits<double>::infinity()) {
      shared.bound_prunes.fetch_add(1, std::memory_order_relaxed);
      if (at_root) {
        shared.root_infeasible.store(true, std::memory_order_relaxed);
      }
      undo_path(ws);
      return;
    }
    if (shared.has_incumbent.load(std::memory_order_acquire) &&
        comb >= shared.best_value.load(std::memory_order_relaxed) - options_.absolute_gap) {
      shared.bound_prunes.fetch_add(1, std::memory_order_relaxed);
      undo_path(ws);
      return;
    }

    set_lp_cutoff(ws, at_root,
                  shared.has_incumbent.load(std::memory_order_acquire)
                      ? shared.best_value.load(std::memory_order_relaxed)
                      : std::numeric_limits<double>::infinity());
    const lp::LpSolution relax = solve_node(ws, node);
    if (relax.status == lp::LpStatus::CutoffReached) {
      update_pseudocost(ws, node, relax.objective);
      shared.cutoff_prunes.fetch_add(1, std::memory_order_relaxed);
      undo_path(ws);
      return;
    }
    if (relax.status == lp::LpStatus::Infeasible) {
      if (at_root) {
        shared.root_infeasible.store(true, std::memory_order_relaxed);
      }
      undo_path(ws);
      return;
    }
    if (relax.status != lp::LpStatus::Optimal) {
      // Unbounded ray or iteration limit: bound unknown, cannot prune.
      shared.exhausted.store(false, std::memory_order_relaxed);
      undo_path(ws);
      return;
    }
    shared.any_lp_solved.store(true, std::memory_order_relaxed);
    update_pseudocost(ws, node, relax.objective);
    const double bound = std::max(relax.objective, comb);
    if (at_root) {
      shared.root_bound.store(bound, std::memory_order_relaxed);
    }
    if (shared.has_incumbent.load(std::memory_order_acquire) &&
        bound >= shared.best_value.load(std::memory_order_relaxed) - options_.absolute_gap) {
      undo_path(ws);
      return;
    }

    const int branch_col = select_branch(ws, relax.values);
    if (branch_col < 0) {
      offer_shared(shared, relax.values, /*tolerance=*/1e-5);
      undo_path(ws);
      return;
    }
    if (options_.enable_rounding_heuristic) {
      offer_shared(shared, relax.values, options_.integrality_tolerance);
    }

    std::shared_ptr<const lp::Basis> child_basis;
    if (use_revised_) {
      child_basis = std::make_shared<lp::Basis>(ws.revised->basis());
    }
    if (at_root && options_.dive && use_revised_) {
      // The root is expanded exactly once, before any child is stealable, so
      // the dive's incumbent is in place before any teammate expands node 2.
      run_root_dive(ws, relax, &shared);
      if (shared.has_incumbent.load(std::memory_order_acquire) &&
          bound >= shared.best_value.load(std::memory_order_relaxed) -
                       options_.absolute_gap) {
        undo_path(ws);
        return;
      }
    }
    const std::size_t bc = static_cast<std::size_t>(branch_col);
    const double value = relax.values[bc];
    const double floor_value = std::floor(value);
    const double frac = value - floor_value;
    const double down_hi = std::min(ws.cur_upper[bc], floor_value);
    const double up_lo = std::max(ws.cur_lower[bc], floor_value + 1.0);
    Node down{std::make_shared<PathStep>(
                  PathStep{branch_col, ws.cur_lower[bc], down_hi, node.path}),
              child_basis, bound, branch_col, frac, false};
    Node up{std::make_shared<PathStep>(
                PathStep{branch_col, up_lo, ws.cur_upper[bc], node.path}),
            child_basis, bound, branch_col, frac, true};
    const bool down_viable = ws.cur_lower[bc] <= down_hi;
    const bool up_viable = up_lo <= ws.cur_upper[bc];
    undo_path(ws);
    const bool up_first = value - floor_value > 0.5;
    WorkerDeque& own = shared.queues[static_cast<std::size_t>(id)];
    auto push_child = [&shared, &own](Node&& child) {
      // Count the node open *before* it becomes stealable, so open_nodes
      // never under-reports and no worker exits while work remains.
      shared.open_nodes.fetch_add(1, std::memory_order_acq_rel);
      util::MutexLock lock(own.mutex);
      own.nodes.push_back(std::move(child));
    };
    if (down_viable && !up_first) {
      push_child(std::move(down));
    }
    if (up_viable) {
      push_child(std::move(up));
    }
    if (down_viable && up_first) {
      push_child(std::move(down));
    }
  }

  /// Snaps integer columns, validates feasibility and offers the point as a
  /// shared incumbent. Strictly worse offers are rejected without the lock;
  /// at equal objective the lexicographically smaller vector wins, which
  /// keeps exhausted parallel solves reproducible where exploration order
  /// would otherwise decide the tie.
  void offer_shared(SharedSearch& shared, const std::vector<double>& x, double tolerance) {
    std::vector<double> snapped = x;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (reduced_.is_integer(c)) {
        snapped[static_cast<std::size_t>(c)] =
            std::round(snapped[static_cast<std::size_t>(c)]);
      }
    }
    const double value = reduced_.lp().objective_value(snapped);
    constexpr double kTie = 1e-12;
    if (shared.has_incumbent.load(std::memory_order_acquire) &&
        value > shared.best_value.load(std::memory_order_relaxed) + kTie) {
      return;
    }
    if (!reduced_.is_feasible(snapped, tolerance)) {
      return;
    }
    util::MutexLock lock(shared.incumbent_mutex);
    const bool has = shared.has_incumbent.load(std::memory_order_relaxed);
    bool take = !has || value < shared.incumbent_value - kTie;
    if (!take && has && value <= shared.incumbent_value + kTie) {
      take = std::lexicographical_compare(snapped.begin(), snapped.end(),
                                          shared.incumbent.begin(),
                                          shared.incumbent.end());
    }
    if (!take) {
      shared.incumbent_races.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    shared.incumbent_value = has ? std::min(value, shared.incumbent_value) : value;
    shared.incumbent = std::move(snapped);
    shared.best_value.store(shared.incumbent_value, std::memory_order_relaxed);
    shared.has_incumbent.store(true, std::memory_order_release);
    shared.incumbent_updates.fetch_add(1, std::memory_order_relaxed);
  }

  // --- shared machinery -----------------------------------------------------

  /// Presolves the model, builds the reduced-space MILP and the root node
  /// solver. Returns false when presolve alone proves infeasibility (which
  /// includes an integer column fixed to a fractional value).
  bool prepare() {
    // Decide the solve strategy up front, on the ORIGINAL model size, so the
    // choice is independent of what presolve removes. Tiny models are usually
    // solved at the root without branching, where the whole fast path — root
    // presolve, CSC build, refactorization state — costs more than warm
    // re-solves can recoup; below the threshold the solver skips presolve and
    // the persistent workspace and gives every node a one-shot cold solve,
    // which has the lowest constant factor at this scale.
    use_revised_ = options_.simplex.algorithm == lp::SimplexAlgorithm::Revised;
    bool cold_fallback = false;
    if (use_revised_ && options_.cold_solve_threshold > 0 &&
        model_.variable_count() + model_.constraint_count() <=
            options_.cold_solve_threshold) {
      use_revised_ = false;
      cold_fallback = true;
    }
    if (options_.presolve && !cold_fallback) {
      pre_ = lp::presolve(model_.lp());
      if (pre_->infeasible()) {
        return false;
      }
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        if (!model_.is_integer(c) || !pre_->column_fixed(c)) {
          continue;
        }
        const double v = pre_->fixed_value(c);
        if (std::abs(v - std::round(v)) > options_.integrality_tolerance) {
          return false;  // integer column pinned to a fractional value
        }
      }
      const lp::LpModel& red = pre_->model();
      for (lp::Col rc = 0; rc < red.variable_count(); ++rc) {
        reduced_.add_variable(VarKind::Continuous, red.lower_bound(rc),
                              red.upper_bound(rc), red.objective_coefficient(rc));
      }
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        if (pre_->column_fixed(c)) {
          objective_offset_ += model_.lp().objective_coefficient(c) * pre_->fixed_value(c);
        } else {
          reduced_.set_kind(pre_->reduced_column(c), model_.kind(c));
        }
      }
      for (lp::Row r = 0; r < red.constraint_count(); ++r) {
        reduced_.add_constraint(red.row_terms(r), red.row_sense(r), red.row_rhs(r));
      }
    } else {
      reduced_ = model_;
    }

    const int n = reduced_.variable_count();
    ws_.cur_lower.resize(static_cast<std::size_t>(n));
    ws_.cur_upper.resize(static_cast<std::size_t>(n));
    for (lp::Col c = 0; c < n; ++c) {
      ws_.cur_lower[static_cast<std::size_t>(c)] = reduced_.lp().lower_bound(c);
      ws_.cur_upper[static_cast<std::size_t>(c)] = reduced_.lp().upper_bound(c);
    }

    if (options_.bounds != nullptr) {
      orig_of_reduced_.assign(static_cast<std::size_t>(n), -1);
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        const lp::Col rc = pre_.has_value() ? pre_->reduced_column(c) : c;
        if (rc >= 0) {
          orig_of_reduced_[static_cast<std::size_t>(rc)] = c;
        }
      }
    }
    long integer_columns = 0;
    for (lp::Col c = 0; c < n; ++c) {
      if (reduced_.is_integer(c)) {
        ++integer_columns;
      }
    }
    // Two solves per dive level (fix + one backtrack flip), depth at most
    // the integer-column count, plus slack for re-fractionalizations.
    dive_budget_ = 2 * integer_columns + 8;
    init_workspace_extras(ws_);

    if (use_revised_) {
      ws_.revised.emplace(reduced_.lp(), options_.simplex);
    } else {
      ws_.scratch = reduced_.lp();
    }
    return true;
  }

  /// Sizes the per-workspace pseudocost tables and the original-space bound
  /// mirror a NodeBoundProvider reads. Called for the root workspace and for
  /// every parallel worker clone.
  void init_workspace_extras(Workspace& ws) const {
    const std::size_t n = static_cast<std::size_t>(reduced_.variable_count());
    if (options_.branching == BranchingRule::Pseudocost) {
      ws.pc_down_sum.assign(n, 0.0);
      ws.pc_up_sum.assign(n, 0.0);
      ws.pc_down_count.assign(n, 0);
      ws.pc_up_count.assign(n, 0);
    }
    if (options_.bounds != nullptr) {
      const std::size_t on = static_cast<std::size_t>(model_.variable_count());
      ws.orig_lower.resize(on);
      ws.orig_upper.resize(on);
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        const std::size_t cs = static_cast<std::size_t>(c);
        if (pre_.has_value() && pre_->column_fixed(c)) {
          ws.orig_lower[cs] = pre_->fixed_value(c);
          ws.orig_upper[cs] = pre_->fixed_value(c);
        } else {
          const lp::Col rc = pre_.has_value() ? pre_->reduced_column(c) : c;
          ws.orig_lower[cs] = reduced_.lp().lower_bound(rc);
          ws.orig_upper[cs] = reduced_.lp().upper_bound(rc);
        }
      }
    }
  }

  /// Maps MilpOptions::warm_start (original space) onto the reduced model.
  void seed_warm_start() {
    if (!options_.warm_start.has_value()) {
      return;
    }
    COHLS_EXPECT(static_cast<int>(options_.warm_start->size()) == model_.variable_count(),
                 "warm start arity must match the model");
    if (!model_.is_feasible(*options_.warm_start, options_.integrality_tolerance)) {
      return;
    }
    std::vector<double> mapped(static_cast<std::size_t>(reduced_.variable_count()));
    if (pre_.has_value()) {
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        const int rc = pre_->reduced_column(c);
        if (rc >= 0) {
          mapped[static_cast<std::size_t>(rc)] =
              (*options_.warm_start)[static_cast<std::size_t>(c)];
        }
      }
    } else {
      mapped = *options_.warm_start;
    }
    if (reduced_.is_feasible(mapped, options_.integrality_tolerance)) {
      incumbent_ = std::move(mapped);
      incumbent_value_ = reduced_.lp().objective_value(incumbent_);
      has_incumbent_ = true;
    }
  }

  bool limit_reached() const {
    if (options_.max_nodes > 0 && nodes_ >= options_.max_nodes) {
      return true;
    }
    return deadline_set_ && Clock::now() >= deadline_;
  }

  /// Replays the node's branch path onto the workspace's effective-bound
  /// arrays and its node solver, recording undo entries.
  void apply_path(Workspace& ws, const std::shared_ptr<const PathStep>& path) {
    ws.path_buffer.clear();
    for (const PathStep* step = path.get(); step != nullptr; step = step->parent.get()) {
      ws.path_buffer.push_back(step);
    }
    for (auto it = ws.path_buffer.rbegin(); it != ws.path_buffer.rend(); ++it) {
      const PathStep* step = *it;
      const std::size_t c = static_cast<std::size_t>(step->col);
      ws.undo_stack.push_back({step->col, ws.cur_lower[c], ws.cur_upper[c]});
      set_node_bounds(ws, step->col, step->lower, step->upper);
    }
  }

  void undo_path(Workspace& ws) {
    for (auto it = ws.undo_stack.rbegin(); it != ws.undo_stack.rend(); ++it) {
      set_node_bounds(ws, it->col, it->lower, it->upper);
    }
    ws.undo_stack.clear();
  }

  void set_node_bounds(Workspace& ws, lp::Col c, double lower, double upper) {
    const std::size_t j = static_cast<std::size_t>(c);
    ws.cur_lower[j] = lower;
    ws.cur_upper[j] = upper;
    if (!ws.orig_lower.empty()) {
      // Reduced-column bounds are the original column's effective bounds
      // (presolve only removes columns, it never rescales the survivors),
      // so the mirror takes the same values at the mapped index.
      const std::size_t oc = static_cast<std::size_t>(orig_of_reduced_[j]);
      ws.orig_lower[oc] = lower;
      ws.orig_upper[oc] = upper;
    }
    if (use_revised_) {
      ws.revised->set_bounds(c, lower, upper);
    } else {
      ws.scratch.set_bounds(c, lower, upper);
    }
  }

  lp::LpSolution solve_node(Workspace& ws, const Node& node) {
    if (use_revised_) {
      if (node.basis != nullptr && !node.basis->empty()) {
        return ws.revised->solve_from(*node.basis);
      }
      return ws.revised->solve();
    }
    const lp::LpSolution solution = lp::solve_lp(ws.scratch, options_.simplex);
    ++ws.cold_scratch_solves;
    ws.cold_scratch_pivots += solution.iterations;
    return solution;
  }

  void collect_lp_stats(MilpSolution& out) const {
    if (use_revised_ && ws_.revised.has_value()) {
      const lp::SolveStats& stats = ws_.revised->total_stats();
      out.lp_pivots = stats.primal_pivots + stats.dual_pivots;
      out.lp_warm_solves = stats.warm_solves;
      out.lp_cold_solves = stats.cold_solves;
      out.lp_refactorizations = stats.refactorizations;
    } else {
      out.lp_pivots = ws_.cold_scratch_pivots;
      out.lp_cold_solves = ws_.cold_scratch_solves;
    }
  }

  /// The node's combinatorial lower bound in reduced space (comparable with
  /// incumbent_value_): the provider's original-space bound minus the
  /// objective mass on presolve-fixed columns. -infinity when no provider is
  /// configured; +infinity when the provider proves the node box empty.
  double combinatorial_bound(const Workspace& ws) const {
    if (options_.bounds == nullptr) {
      return -std::numeric_limits<double>::infinity();
    }
    const double cb = options_.bounds->objective_lower_bound(ws.orig_lower, ws.orig_upper);
    if (cb == std::numeric_limits<double>::infinity()) {
      return cb;
    }
    return cb - objective_offset_;
  }

  /// Arms the dual-simplex objective cutoff for the next warm re-solve. Only
  /// active in bound-driven mode (a provider is attached): the cutoff skips
  /// the pruned node's rounding-heuristic pass, which is a trajectory change
  /// we keep out of the plain configuration. Off at the root so the root
  /// bound is always exact.
  void set_lp_cutoff(Workspace& ws, bool at_root, double incumbent_value) {
    if (!use_revised_ || options_.bounds == nullptr) {
      return;
    }
    const double cutoff = at_root ? std::numeric_limits<double>::infinity()
                                  : incumbent_value - options_.absolute_gap;
    ws.revised->set_objective_cutoff(cutoff);
  }

  /// Variable selection. Pseudocost mode scores a fractional column by the
  /// product of its estimated up/down bound degradations; a column with no
  /// history on either side is "unreliable" and the rule falls back to
  /// most-fractional among the unreliable ones, which is exactly what
  /// initializes the pseudocosts. Returns -1 when the point is integral.
  int select_branch(const Workspace& ws, const std::vector<double>& x) const {
    if (options_.branching != BranchingRule::Pseudocost || ws.pc_down_sum.empty()) {
      return most_fractional(x);
    }
    int best_unreliable = -1;
    double best_unreliable_frac = options_.integrality_tolerance;
    int best_reliable = -1;
    double best_score = -1.0;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (!reduced_.is_integer(c)) {
        continue;
      }
      const std::size_t j = static_cast<std::size_t>(c);
      const double v = x[j];
      const double frac = std::abs(v - std::round(v));
      if (frac <= options_.integrality_tolerance) {
        continue;
      }
      const double f = v - std::floor(v);
      if (ws.pc_down_count[j] == 0 || ws.pc_up_count[j] == 0) {
        if (frac > best_unreliable_frac) {
          best_unreliable_frac = frac;
          best_unreliable = c;
        }
      } else {
        const double down =
            ws.pc_down_sum[j] / static_cast<double>(ws.pc_down_count[j]) * f;
        const double up =
            ws.pc_up_sum[j] / static_cast<double>(ws.pc_up_count[j]) * (1.0 - f);
        const double score = std::max(down, 1e-6) * std::max(up, 1e-6);
        if (score > best_score) {
          best_score = score;
          best_reliable = c;
        }
      }
    }
    return best_unreliable >= 0 ? best_unreliable : best_reliable;
  }

  /// Records the observed bound degradation of a child relative to its
  /// parent, normalized per unit of fractionality, on the branched column.
  void update_pseudocost(Workspace& ws, const Node& node, double child_bound) const {
    if (options_.branching != BranchingRule::Pseudocost || ws.pc_down_sum.empty() ||
        node.branch_col < 0 || node.parent_bound <= -MilpSolution::kBigBound) {
      return;
    }
    const double denom = node.branch_up ? 1.0 - node.branch_frac : node.branch_frac;
    if (denom < 1e-9) {
      return;
    }
    const double gain = std::max(0.0, child_bound - node.parent_bound) / denom;
    const std::size_t j = static_cast<std::size_t>(node.branch_col);
    if (node.branch_up) {
      ws.pc_up_sum[j] += gain;
      ++ws.pc_up_count[j];
    } else {
      ws.pc_down_sum[j] += gain;
      ++ws.pc_down_count[j];
    }
  }

  /// The root dive (see milp/dive.hpp): fixes its way down from the root
  /// relaxation with warm re-solves, offers any integral point it reaches as
  /// an incumbent, and restores every bound it touched. `shared == nullptr`
  /// means the sequential search. LP work lands in the dive counters, never
  /// in the node budget.
  void run_root_dive(Workspace& ws, const lp::LpSolution& root_relax,
                     SharedSearch* shared) {
    std::vector<BoundUndo> undo;
    lp::Basis dive_basis = ws.revised->basis();
    DiveHooks hooks;
    hooks.lower = &ws.cur_lower;
    hooks.upper = &ws.cur_upper;
    hooks.set_bounds = [this, &ws, &undo](lp::Col c, double lo, double hi) {
      const std::size_t j = static_cast<std::size_t>(c);
      undo.push_back({c, ws.cur_lower[j], ws.cur_upper[j]});
      set_node_bounds(ws, c, lo, hi);
    };
    hooks.resolve = [this, &ws, &dive_basis]() {
      lp::LpSolution sol = ws.revised->solve_from(dive_basis);
      if (sol.status == lp::LpStatus::Optimal) {
        dive_basis = ws.revised->basis();
      }
      return sol;
    };
    const DiveResult result =
        dive_for_incumbent(reduced_, hooks, root_relax,
                           options_.integrality_tolerance,
                           /*feasibility_tolerance=*/1e-5, dive_budget_);
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      set_node_bounds(ws, it->col, it->lower, it->upper);
    }
    if (shared == nullptr) {
      dive_lp_solves_ += result.lp_solves;
      dive_found_ = dive_found_ || result.found;
      if (result.found) {
        offer_incumbent(result.values);
      }
    } else {
      shared->dive_lp_solves.fetch_add(result.lp_solves, std::memory_order_relaxed);
      if (result.found) {
        shared->dive_found.store(true, std::memory_order_relaxed);
        offer_shared(*shared, result.values, /*tolerance=*/1e-5);
      }
    }
  }

  int most_fractional(const std::vector<double>& x) const {
    int best = -1;
    double best_score = options_.integrality_tolerance;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (!reduced_.is_integer(c)) {
        continue;
      }
      const double v = x[static_cast<std::size_t>(c)];
      const double frac = std::abs(v - std::round(v));
      if (frac > best_score) {
        best_score = frac;
        best = c;
      }
    }
    return best;
  }

  void offer_incumbent(const std::vector<double>& x) {
    std::vector<double> snapped = x;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (reduced_.is_integer(c)) {
        snapped[static_cast<std::size_t>(c)] =
            std::round(snapped[static_cast<std::size_t>(c)]);
      }
    }
    const double value = reduced_.lp().objective_value(snapped);
    if (!has_incumbent_ || value < incumbent_value_ - 1e-12) {
      if (reduced_.is_feasible(snapped, 1e-5)) {
        incumbent_ = std::move(snapped);
        incumbent_value_ = value;
        has_incumbent_ = true;
      }
    }
  }

  void try_rounding(const std::vector<double>& x) {
    std::vector<double> rounded = x;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (reduced_.is_integer(c)) {
        rounded[static_cast<std::size_t>(c)] =
            std::round(rounded[static_cast<std::size_t>(c)]);
      }
    }
    const double value = reduced_.lp().objective_value(rounded);
    if ((!has_incumbent_ || value < incumbent_value_ - 1e-12) &&
        reduced_.is_feasible(rounded, options_.integrality_tolerance)) {
      incumbent_ = std::move(rounded);
      incumbent_value_ = value;
      has_incumbent_ = true;
    }
  }

  std::vector<double> restore_incumbent() const {
    std::vector<double> full =
        pre_.has_value() ? pre_->restore(incumbent_) : incumbent_;
    for (lp::Col c = 0; c < model_.variable_count(); ++c) {
      if (model_.is_integer(c)) {
        full[static_cast<std::size_t>(c)] = std::round(full[static_cast<std::size_t>(c)]);
      }
    }
    return full;
  }

  /// The common epilogue: best bound, incumbent restoration and status.
  void finish(MilpSolution& out, bool exhausted, double global_bound,
              bool root_infeasible_proven, bool any_lp_solved) {
    const double bound_offset = objective_offset_;
    out.best_bound = exhausted && has_incumbent_ ? incumbent_value_ + bound_offset
                                                 : global_bound + bound_offset;
    if (has_incumbent_) {
      out.values = restore_incumbent();
      out.objective = model_.lp().objective_value(out.values);
      out.status = exhausted ? MilpStatus::Optimal : MilpStatus::Feasible;
      if (exhausted) {
        out.best_bound = out.objective;
      }
    } else if (exhausted && (any_lp_solved || root_infeasible_proven || out.nodes > 0)) {
      out.status = MilpStatus::Infeasible;
    } else {
      out.status = MilpStatus::NoSolution;
    }
  }

  const MilpModel& model_;
  const MilpOptions& options_;
  std::optional<lp::Presolved> pre_;
  MilpModel reduced_;  ///< presolved model the search actually branches over
  double objective_offset_ = 0.0;  ///< objective mass on presolve-fixed columns
  bool use_revised_ = true;
  Workspace ws_;  ///< root workspace; worker 0's in a parallel solve
  bool deadline_set_;
  Clock::time_point deadline_{};
  long nodes_ = 0;
  bool cancelled_ = false;
  /// Original column index per reduced column (provider mode only).
  std::vector<lp::Col> orig_of_reduced_;
  long dive_budget_ = 0;
  long bound_prunes_ = 0;
  long cutoff_prunes_ = 0;
  long dive_lp_solves_ = 0;
  bool dive_found_ = false;
  bool has_incumbent_ = false;
  std::vector<double> incumbent_;  ///< reduced space; restored on exit
  double incumbent_value_ = std::numeric_limits<double>::infinity();
};

}  // namespace

MilpSolution solve_milp(const MilpModel& model, const MilpOptions& options) {
  Solver solver(model, options);
  return solver.run();
}

}  // namespace cohls::milp
