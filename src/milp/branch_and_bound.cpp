#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace cohls::milp {

std::string to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::Optimal: return "Optimal";
    case MilpStatus::Feasible: return "Feasible";
    case MilpStatus::Infeasible: return "Infeasible";
    case MilpStatus::NoSolution: return "NoSolution";
  }
  return "Unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

struct Node {
  // Per-variable bound overrides accumulated along the branch path.
  std::vector<double> lower;
  std::vector<double> upper;
  double parent_bound;  // LP bound of the parent, for pruning before solving
};

class Solver {
 public:
  Solver(const MilpModel& model, const MilpOptions& options)
      : model_(model), options_(options), deadline_set_(options.time_limit_seconds > 0) {
    if (deadline_set_) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(options.time_limit_seconds));
    }
  }

  MilpSolution run() {
    MilpSolution out;
    if (options_.warm_start.has_value()) {
      COHLS_EXPECT(static_cast<int>(options_.warm_start->size()) == model_.variable_count(),
                   "warm start arity must match the model");
      if (model_.is_feasible(*options_.warm_start, options_.integrality_tolerance)) {
        incumbent_ = *options_.warm_start;
        incumbent_value_ = model_.lp().objective_value(incumbent_);
      }
    }

    Node root;
    root.lower.resize(static_cast<std::size_t>(model_.variable_count()));
    root.upper.resize(static_cast<std::size_t>(model_.variable_count()));
    for (lp::Col c = 0; c < model_.variable_count(); ++c) {
      root.lower[static_cast<std::size_t>(c)] = model_.lp().lower_bound(c);
      root.upper[static_cast<std::size_t>(c)] = model_.lp().upper_bound(c);
    }
    root.parent_bound = -MilpSolution::kBigBound;

    std::vector<Node> stack;
    stack.push_back(std::move(root));
    double global_bound = -MilpSolution::kBigBound;
    bool exhausted = true;
    bool root_infeasible_proven = false;
    bool any_lp_solved = false;

    while (!stack.empty()) {
      if (options_.cancel.can_cancel() && options_.cancel.cancelled()) {
        exhausted = false;
        cancelled_ = true;
        break;
      }
      if (limit_reached()) {
        exhausted = false;
        break;
      }
      Node node = std::move(stack.back());
      stack.pop_back();
      if (has_incumbent() &&
          node.parent_bound >= incumbent_value_ - options_.absolute_gap) {
        continue;  // cannot improve on the incumbent
      }

      ++nodes_;
      const lp::LpSolution relax = solve_relaxation(node);
      if (relax.status == lp::LpStatus::Infeasible) {
        if (nodes_ == 1) {
          root_infeasible_proven = true;
        }
        continue;
      }
      if (relax.status == lp::LpStatus::Unbounded) {
        // An unbounded relaxation of a bounded-variable MILP means free
        // continuous directions; report the best we have.
        exhausted = false;
        continue;
      }
      if (relax.status != lp::LpStatus::Optimal) {
        exhausted = false;  // iteration limit: bound unknown, cannot prune
        continue;
      }
      any_lp_solved = true;
      const double bound = relax.objective;
      if (nodes_ == 1) {
        global_bound = bound;
      }
      if (has_incumbent() && bound >= incumbent_value_ - options_.absolute_gap) {
        continue;
      }

      const int branch_col = most_fractional(relax.values);
      if (branch_col < 0) {
        // Integral: new incumbent.
        offer_incumbent(relax.values);
        continue;
      }
      if (options_.enable_rounding_heuristic) {
        try_rounding(relax.values);
      }

      const double value = relax.values[static_cast<std::size_t>(branch_col)];
      const double floor_value = std::floor(value);
      Node down = node;
      down.upper[static_cast<std::size_t>(branch_col)] =
          std::min(down.upper[static_cast<std::size_t>(branch_col)], floor_value);
      down.parent_bound = bound;
      Node up = std::move(node);
      up.lower[static_cast<std::size_t>(branch_col)] =
          std::max(up.lower[static_cast<std::size_t>(branch_col)], floor_value + 1.0);
      up.parent_bound = bound;
      // Depth-first; explore the child nearer the fractional value first
      // (push it last so it pops first).
      if (value - floor_value > 0.5) {
        stack.push_back(std::move(down));
        stack.push_back(std::move(up));
      } else {
        stack.push_back(std::move(up));
        stack.push_back(std::move(down));
      }
    }

    out.nodes = nodes_;
    out.cancelled = cancelled_;
    out.best_bound = exhausted && has_incumbent() ? incumbent_value_ : global_bound;
    if (has_incumbent()) {
      out.values = incumbent_;
      out.objective = incumbent_value_;
      out.status = exhausted ? MilpStatus::Optimal : MilpStatus::Feasible;
    } else if (exhausted && (any_lp_solved || root_infeasible_proven || nodes_ > 0)) {
      out.status = MilpStatus::Infeasible;
    } else {
      out.status = MilpStatus::NoSolution;
    }
    return out;
  }

 private:
  bool limit_reached() const {
    if (options_.max_nodes > 0 && nodes_ >= options_.max_nodes) {
      return true;
    }
    return deadline_set_ && Clock::now() >= deadline_;
  }

  bool has_incumbent() const { return !incumbent_.empty(); }

  lp::LpSolution solve_relaxation(const Node& node) {
    // Apply the node's bounds onto the shared scratch LP (rows and
    // objective never change between nodes, only bounds do).
    if (scratch_.variable_count() == 0 && model_.variable_count() > 0) {
      scratch_ = model_.lp();
    }
    for (lp::Col c = 0; c < model_.variable_count(); ++c) {
      const double lo = node.lower[static_cast<std::size_t>(c)];
      const double hi = node.upper[static_cast<std::size_t>(c)];
      if (lo > hi) {
        lp::LpSolution infeasible;
        infeasible.status = lp::LpStatus::Infeasible;
        return infeasible;
      }
      scratch_.set_bounds(c, lo, hi);
    }
    return lp::solve_lp(scratch_, simplex_options_);
  }

  int most_fractional(const std::vector<double>& x) const {
    int best = -1;
    double best_score = options_.integrality_tolerance;
    for (lp::Col c = 0; c < model_.variable_count(); ++c) {
      if (!model_.is_integer(c)) {
        continue;
      }
      const double v = x[static_cast<std::size_t>(c)];
      const double frac = std::abs(v - std::round(v));
      if (frac > best_score) {
        best_score = frac;
        best = c;
      }
    }
    return best;
  }

  void offer_incumbent(const std::vector<double>& x) {
    std::vector<double> snapped = x;
    for (lp::Col c = 0; c < model_.variable_count(); ++c) {
      if (model_.is_integer(c)) {
        snapped[static_cast<std::size_t>(c)] =
            std::round(snapped[static_cast<std::size_t>(c)]);
      }
    }
    const double value = model_.lp().objective_value(snapped);
    if (!has_incumbent() || value < incumbent_value_ - 1e-12) {
      if (model_.is_feasible(snapped, 1e-5)) {
        incumbent_ = std::move(snapped);
        incumbent_value_ = value;
      }
    }
  }

  void try_rounding(const std::vector<double>& x) {
    std::vector<double> rounded = x;
    for (lp::Col c = 0; c < model_.variable_count(); ++c) {
      if (model_.is_integer(c)) {
        rounded[static_cast<std::size_t>(c)] =
            std::round(rounded[static_cast<std::size_t>(c)]);
      }
    }
    const double value = model_.lp().objective_value(rounded);
    if ((!has_incumbent() || value < incumbent_value_ - 1e-12) &&
        model_.is_feasible(rounded, options_.integrality_tolerance)) {
      incumbent_ = std::move(rounded);
      incumbent_value_ = value;
    }
  }

  const MilpModel& model_;
  const MilpOptions& options_;
  lp::LpModel scratch_;
  lp::SimplexOptions simplex_options_{};
  bool deadline_set_;
  Clock::time_point deadline_{};
  long nodes_ = 0;
  bool cancelled_ = false;
  std::vector<double> incumbent_;
  double incumbent_value_ = std::numeric_limits<double>::infinity();
};

}  // namespace

MilpSolution solve_milp(const MilpModel& model, const MilpOptions& options) {
  Solver solver(model, options);
  return solver.run();
}

}  // namespace cohls::milp
