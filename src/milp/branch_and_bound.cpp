#include "milp/branch_and_bound.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "lp/presolve.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "util/check.hpp"

namespace cohls::milp {

std::string to_string(MilpStatus status) {
  switch (status) {
    case MilpStatus::Optimal: return "Optimal";
    case MilpStatus::Feasible: return "Feasible";
    case MilpStatus::Infeasible: return "Infeasible";
    case MilpStatus::NoSolution: return "NoSolution";
  }
  return "Unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

/// One bound tightening on the branch path. Children share their parent's
/// suffix, so a node's bounds are O(depth) deltas instead of the O(n)
/// lower/upper vector copies the solver used to carry per node. The stored
/// bounds are absolute (already intersected with everything above them on
/// the path), so replaying root-to-leaf in order reproduces the node's
/// effective bounds exactly.
struct PathStep {
  lp::Col col = -1;
  double lower = 0.0;
  double upper = 0.0;
  std::shared_ptr<const PathStep> parent;
};

struct Node {
  std::shared_ptr<const PathStep> path;    ///< bound deltas from the root
  std::shared_ptr<const lp::Basis> basis;  ///< parent's optimal basis, if any
  double parent_bound = 0.0;  ///< LP bound of the parent, for pruning before solving
};

class Solver {
 public:
  Solver(const MilpModel& model, const MilpOptions& options)
      : model_(model), options_(options), deadline_set_(options.time_limit_seconds > 0) {
    if (deadline_set_) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(options.time_limit_seconds));
    }
  }

  MilpSolution run() {
    MilpSolution out;
    if (!prepare()) {
      out.status = MilpStatus::Infeasible;
      return out;
    }
    seed_warm_start();

    std::vector<Node> stack;
    stack.push_back(Node{nullptr, nullptr, -MilpSolution::kBigBound});
    double global_bound = -MilpSolution::kBigBound;
    bool exhausted = true;
    bool root_infeasible_proven = false;
    bool any_lp_solved = false;

    while (!stack.empty()) {
      if (options_.cancel.can_cancel() && options_.cancel.cancelled()) {
        exhausted = false;
        cancelled_ = true;
        break;
      }
      if (limit_reached()) {
        exhausted = false;
        break;
      }
      Node node = std::move(stack.back());
      stack.pop_back();
      if (has_incumbent_ &&
          node.parent_bound >= incumbent_value_ - options_.absolute_gap) {
        continue;  // cannot improve on the incumbent
      }

      ++nodes_;
      apply_path(node.path);
      const lp::LpSolution relax = solve_node(node);
      if (relax.status == lp::LpStatus::Infeasible) {
        if (nodes_ == 1) {
          root_infeasible_proven = true;
        }
        undo_path();
        continue;
      }
      if (relax.status == lp::LpStatus::Unbounded) {
        // An unbounded relaxation of a bounded-variable MILP means free
        // continuous directions; report the best we have.
        exhausted = false;
        undo_path();
        continue;
      }
      if (relax.status != lp::LpStatus::Optimal) {
        exhausted = false;  // iteration limit: bound unknown, cannot prune
        undo_path();
        continue;
      }
      any_lp_solved = true;
      const double bound = relax.objective;
      if (nodes_ == 1) {
        global_bound = bound;
      }
      if (has_incumbent_ && bound >= incumbent_value_ - options_.absolute_gap) {
        undo_path();
        continue;
      }

      const int branch_col = most_fractional(relax.values);
      if (branch_col < 0) {
        // Integral: new incumbent.
        offer_incumbent(relax.values);
        undo_path();
        continue;
      }
      if (options_.enable_rounding_heuristic) {
        try_rounding(relax.values);
      }

      // Children re-solve from this node's optimal basis with the dual
      // simplex after the single branching-bound change.
      std::shared_ptr<const lp::Basis> child_basis;
      if (use_revised_) {
        child_basis = std::make_shared<lp::Basis>(revised_->basis());
      }
      const std::size_t bc = static_cast<std::size_t>(branch_col);
      const double value = relax.values[bc];
      const double floor_value = std::floor(value);
      const double down_hi = std::min(cur_upper_[bc], floor_value);
      const double up_lo = std::max(cur_lower_[bc], floor_value + 1.0);
      Node down{std::make_shared<PathStep>(
                    PathStep{branch_col, cur_lower_[bc], down_hi, node.path}),
                child_basis, bound};
      Node up{std::make_shared<PathStep>(
                  PathStep{branch_col, up_lo, cur_upper_[bc], node.path}),
              child_basis, bound};
      const bool down_viable = cur_lower_[bc] <= down_hi;
      const bool up_viable = up_lo <= cur_upper_[bc];
      undo_path();
      // Depth-first; explore the child nearer the fractional value first
      // (push it last so it pops first).
      const bool up_first = value - floor_value > 0.5;
      if (down_viable && !up_first) {
        stack.push_back(std::move(down));
      }
      if (up_viable) {
        stack.push_back(std::move(up));
      }
      if (down_viable && up_first) {
        stack.push_back(std::move(down));
      }
    }

    out.nodes = nodes_;
    out.cancelled = cancelled_;
    collect_lp_stats(out);
    const double bound_offset = objective_offset_;
    out.best_bound = exhausted && has_incumbent_ ? incumbent_value_ + bound_offset
                                                 : global_bound + bound_offset;
    if (has_incumbent_) {
      out.values = restore_incumbent();
      out.objective = model_.lp().objective_value(out.values);
      out.status = exhausted ? MilpStatus::Optimal : MilpStatus::Feasible;
      if (exhausted) {
        out.best_bound = out.objective;
      }
    } else if (exhausted && (any_lp_solved || root_infeasible_proven || nodes_ > 0)) {
      out.status = MilpStatus::Infeasible;
    } else {
      out.status = MilpStatus::NoSolution;
    }
    return out;
  }

 private:
  /// Presolves the model, builds the reduced-space MILP and the node
  /// solver. Returns false when presolve alone proves infeasibility (which
  /// includes an integer column fixed to a fractional value).
  bool prepare() {
    if (options_.presolve) {
      pre_ = lp::presolve(model_.lp());
      if (pre_->infeasible()) {
        return false;
      }
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        if (!model_.is_integer(c) || !pre_->column_fixed(c)) {
          continue;
        }
        const double v = pre_->fixed_value(c);
        if (std::abs(v - std::round(v)) > options_.integrality_tolerance) {
          return false;  // integer column pinned to a fractional value
        }
      }
      const lp::LpModel& red = pre_->model();
      for (lp::Col rc = 0; rc < red.variable_count(); ++rc) {
        reduced_.add_variable(VarKind::Continuous, red.lower_bound(rc),
                              red.upper_bound(rc), red.objective_coefficient(rc));
      }
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        if (pre_->column_fixed(c)) {
          objective_offset_ += model_.lp().objective_coefficient(c) * pre_->fixed_value(c);
        } else {
          reduced_.set_kind(pre_->reduced_column(c), model_.kind(c));
        }
      }
      for (lp::Row r = 0; r < red.constraint_count(); ++r) {
        reduced_.add_constraint(red.row_terms(r), red.row_sense(r), red.row_rhs(r));
      }
    } else {
      reduced_ = model_;
    }

    const int n = reduced_.variable_count();
    cur_lower_.resize(static_cast<std::size_t>(n));
    cur_upper_.resize(static_cast<std::size_t>(n));
    for (lp::Col c = 0; c < n; ++c) {
      cur_lower_[static_cast<std::size_t>(c)] = reduced_.lp().lower_bound(c);
      cur_upper_[static_cast<std::size_t>(c)] = reduced_.lp().upper_bound(c);
    }

    use_revised_ = options_.simplex.algorithm == lp::SimplexAlgorithm::Revised;
    if (use_revised_) {
      revised_.emplace(reduced_.lp(), options_.simplex);
    } else {
      scratch_ = reduced_.lp();
    }
    return true;
  }

  /// Maps MilpOptions::warm_start (original space) onto the reduced model.
  void seed_warm_start() {
    if (!options_.warm_start.has_value()) {
      return;
    }
    COHLS_EXPECT(static_cast<int>(options_.warm_start->size()) == model_.variable_count(),
                 "warm start arity must match the model");
    if (!model_.is_feasible(*options_.warm_start, options_.integrality_tolerance)) {
      return;
    }
    std::vector<double> mapped(static_cast<std::size_t>(reduced_.variable_count()));
    if (pre_.has_value()) {
      for (lp::Col c = 0; c < model_.variable_count(); ++c) {
        const int rc = pre_->reduced_column(c);
        if (rc >= 0) {
          mapped[static_cast<std::size_t>(rc)] =
              (*options_.warm_start)[static_cast<std::size_t>(c)];
        }
      }
    } else {
      mapped = *options_.warm_start;
    }
    if (reduced_.is_feasible(mapped, options_.integrality_tolerance)) {
      incumbent_ = std::move(mapped);
      incumbent_value_ = reduced_.lp().objective_value(incumbent_);
      has_incumbent_ = true;
    }
  }

  bool limit_reached() const {
    if (options_.max_nodes > 0 && nodes_ >= options_.max_nodes) {
      return true;
    }
    return deadline_set_ && Clock::now() >= deadline_;
  }

  /// Replays the node's branch path onto the effective-bound arrays and the
  /// node solver, recording undo entries.
  void apply_path(const std::shared_ptr<const PathStep>& path) {
    path_buffer_.clear();
    for (const PathStep* step = path.get(); step != nullptr; step = step->parent.get()) {
      path_buffer_.push_back(step);
    }
    for (auto it = path_buffer_.rbegin(); it != path_buffer_.rend(); ++it) {
      const PathStep* step = *it;
      const std::size_t c = static_cast<std::size_t>(step->col);
      undo_stack_.push_back({step->col, cur_lower_[c], cur_upper_[c]});
      set_node_bounds(step->col, step->lower, step->upper);
    }
  }

  void undo_path() {
    for (auto it = undo_stack_.rbegin(); it != undo_stack_.rend(); ++it) {
      set_node_bounds(it->col, it->lower, it->upper);
    }
    undo_stack_.clear();
  }

  void set_node_bounds(lp::Col c, double lower, double upper) {
    const std::size_t j = static_cast<std::size_t>(c);
    cur_lower_[j] = lower;
    cur_upper_[j] = upper;
    if (use_revised_) {
      revised_->set_bounds(c, lower, upper);
    } else {
      scratch_.set_bounds(c, lower, upper);
    }
  }

  lp::LpSolution solve_node(const Node& node) {
    if (use_revised_) {
      if (node.basis != nullptr && !node.basis->empty()) {
        return revised_->solve_from(*node.basis);
      }
      return revised_->solve();
    }
    const lp::LpSolution solution = lp::solve_lp(scratch_, options_.simplex);
    ++dense_solves_;
    dense_pivots_ += solution.iterations;
    return solution;
  }

  void collect_lp_stats(MilpSolution& out) const {
    if (use_revised_ && revised_.has_value()) {
      const lp::SolveStats& stats = revised_->total_stats();
      out.lp_pivots = stats.primal_pivots + stats.dual_pivots;
      out.lp_warm_solves = stats.warm_solves;
      out.lp_cold_solves = stats.cold_solves;
      out.lp_refactorizations = stats.refactorizations;
    } else {
      out.lp_pivots = dense_pivots_;
      out.lp_cold_solves = dense_solves_;
    }
  }

  int most_fractional(const std::vector<double>& x) const {
    int best = -1;
    double best_score = options_.integrality_tolerance;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (!reduced_.is_integer(c)) {
        continue;
      }
      const double v = x[static_cast<std::size_t>(c)];
      const double frac = std::abs(v - std::round(v));
      if (frac > best_score) {
        best_score = frac;
        best = c;
      }
    }
    return best;
  }

  void offer_incumbent(const std::vector<double>& x) {
    std::vector<double> snapped = x;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (reduced_.is_integer(c)) {
        snapped[static_cast<std::size_t>(c)] =
            std::round(snapped[static_cast<std::size_t>(c)]);
      }
    }
    const double value = reduced_.lp().objective_value(snapped);
    if (!has_incumbent_ || value < incumbent_value_ - 1e-12) {
      if (reduced_.is_feasible(snapped, 1e-5)) {
        incumbent_ = std::move(snapped);
        incumbent_value_ = value;
        has_incumbent_ = true;
      }
    }
  }

  void try_rounding(const std::vector<double>& x) {
    std::vector<double> rounded = x;
    for (lp::Col c = 0; c < reduced_.variable_count(); ++c) {
      if (reduced_.is_integer(c)) {
        rounded[static_cast<std::size_t>(c)] =
            std::round(rounded[static_cast<std::size_t>(c)]);
      }
    }
    const double value = reduced_.lp().objective_value(rounded);
    if ((!has_incumbent_ || value < incumbent_value_ - 1e-12) &&
        reduced_.is_feasible(rounded, options_.integrality_tolerance)) {
      incumbent_ = std::move(rounded);
      incumbent_value_ = value;
      has_incumbent_ = true;
    }
  }

  std::vector<double> restore_incumbent() const {
    std::vector<double> full =
        pre_.has_value() ? pre_->restore(incumbent_) : incumbent_;
    for (lp::Col c = 0; c < model_.variable_count(); ++c) {
      if (model_.is_integer(c)) {
        full[static_cast<std::size_t>(c)] = std::round(full[static_cast<std::size_t>(c)]);
      }
    }
    return full;
  }

  struct BoundUndo {
    lp::Col col;
    double lower;
    double upper;
  };

  const MilpModel& model_;
  const MilpOptions& options_;
  std::optional<lp::Presolved> pre_;
  MilpModel reduced_;  ///< presolved model the search actually branches over
  double objective_offset_ = 0.0;  ///< objective mass on presolve-fixed columns
  bool use_revised_ = true;
  std::optional<lp::RevisedSimplex> revised_;
  lp::LpModel scratch_;  ///< dense-algorithm path: bounds applied in place
  std::vector<double> cur_lower_;  ///< effective bounds of the node being solved
  std::vector<double> cur_upper_;
  std::vector<const PathStep*> path_buffer_;
  std::vector<BoundUndo> undo_stack_;
  long dense_solves_ = 0;
  long dense_pivots_ = 0;
  bool deadline_set_;
  Clock::time_point deadline_{};
  long nodes_ = 0;
  bool cancelled_ = false;
  bool has_incumbent_ = false;
  std::vector<double> incumbent_;  ///< reduced space; restored on exit
  double incumbent_value_ = std::numeric_limits<double>::infinity();
};

}  // namespace

MilpSolution solve_milp(const MilpModel& model, const MilpOptions& options) {
  Solver solver(model, options);
  return solver.run();
}

}  // namespace cohls::milp
