// Depth-first rounding/fixing dive for the branch-and-bound root.
//
// The search's worst failure mode on the layer MILPs was fan-out with no
// incumbent: every near-root node survives the bound test because there is
// nothing to prune against, and a parallel team burns the whole shared node
// budget before anything integral is found. The dive fixes that by spending
// a few warm LP re-solves *before* any fan-out: repeatedly fix the
// least-fractional integer column to its nearest value and re-solve from the
// previous optimal basis, backtracking once per column (flip to the other
// neighboring integer) when a fix turns the LP infeasible. A successful dive
// ends at an integral, LP-feasible point — an incumbent every worker can
// prune against from node 1. Dive LP solves are charged to
// MilpSolution::dive_lp_solves, never to the node budget.
#pragma once

#include <functional>
#include <vector>

#include "lp/simplex.hpp"
#include "milp/model.hpp"

namespace cohls::milp {

struct DiveResult {
  bool found = false;           ///< the dive reached a validated integral point
  std::vector<double> values;   ///< that point, in the hooks' variable space
  double objective = 0.0;       ///< its objective value
  long lp_solves = 0;           ///< LP re-solves the dive consumed
};

/// How the dive drives its owner's LP workspace. The owner keeps control of
/// bound bookkeeping (so every tightening the dive applies is recorded for
/// undo) and of how a re-solve warm-starts; the dive only decides *what* to
/// fix next.
struct DiveHooks {
  /// Re-solves the current bound box, warm from the last optimal basis.
  std::function<lp::LpSolution()> resolve;
  /// Tightens one column to [lower, upper]; the owner records the undo.
  std::function<void(lp::Col, double lower, double upper)> set_bounds;
  /// The current effective bounds of the box being dived (owner-maintained;
  /// the dive reads them to clamp rounding targets).
  const std::vector<double>* lower = nullptr;
  const std::vector<double>* upper = nullptr;
};

/// Runs the dive from `root_relax` (an Optimal relaxation of the current
/// box). On return the owner's box still carries the dive's fixings — the
/// owner undoes them through its own undo log. The returned point, when
/// found, is validated against `model` (is_feasible at `feasibility_tolerance`).
[[nodiscard]] DiveResult dive_for_incumbent(const MilpModel& model,
                                            const DiveHooks& hooks,
                                            const lp::LpSolution& root_relax,
                                            double integrality_tolerance,
                                            double feasibility_tolerance,
                                            long max_lp_solves);

}  // namespace cohls::milp
