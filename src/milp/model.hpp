// Mixed-integer model: an LpModel plus integrality marks. The per-layer
// synthesis model of the paper (Sec. 4) instantiates this with binary
// device-configuration / binding / disjunction variables and integer start
// times.
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"

namespace cohls::milp {

enum class VarKind {
  Continuous,
  Integer,
  Binary,  ///< integer in [0, 1]
};

/// A minimization MILP. Wraps LpModel and records which columns must take
/// integral values.
class MilpModel {
 public:
  lp::Col add_variable(VarKind kind, double lower, double upper, double objective,
                       std::string name = {});

  /// Convenience: a {0,1} variable.
  lp::Col add_binary(double objective, std::string name = {}) {
    return add_variable(VarKind::Binary, 0.0, 1.0, objective, std::move(name));
  }

  lp::Row add_constraint(std::vector<lp::Term> terms, lp::RowSense sense, double rhs,
                         std::string name = {}) {
    return lp_.add_constraint(std::move(terms), sense, rhs, std::move(name));
  }

  [[nodiscard]] const lp::LpModel& lp() const { return lp_; }
  [[nodiscard]] lp::LpModel& lp() { return lp_; }

  [[nodiscard]] bool is_integer(lp::Col c) const {
    return kinds_[static_cast<std::size_t>(c)] != VarKind::Continuous;
  }
  [[nodiscard]] VarKind kind(lp::Col c) const { return kinds_[static_cast<std::size_t>(c)]; }

  /// Reclassifies an existing column. Used when mirroring a presolved LP
  /// into a reduced MILP, where bounds may already be tighter than the
  /// canonical {0, 1} box add_variable enforces for binaries.
  void set_kind(lp::Col c, VarKind kind) { kinds_[static_cast<std::size_t>(c)] = kind; }
  [[nodiscard]] int variable_count() const { return lp_.variable_count(); }
  [[nodiscard]] int constraint_count() const { return lp_.constraint_count(); }

  /// True when `x` is row/bound feasible and integral on integer columns.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x, double tolerance = 1e-6) const;

 private:
  lp::LpModel lp_;
  std::vector<VarKind> kinds_;
};

}  // namespace cohls::milp
