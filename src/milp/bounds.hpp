// Combinatorial per-node lower bounds for the branch-and-bound search.
//
// The LP relaxation of the per-layer scheduling MILP is weak near the root:
// the big-M conflict disjunctions (10)-(13) are vacuous while their q
// binaries are fractional, so the LP bound is little more than the critical
// path. A NodeBoundProvider computes a *combinatorial* lower bound from the
// branch-path fixings alone — no LP solve — and the search prunes a node
// whenever max(LP parent bound, combinatorial bound) already meets the
// incumbent. SchedulingBounds is the concrete provider for device-conflict
// scheduling models: a Fernandez-style resource-interval (energetic) bound
// over the operations' time windows and a Fujita-style binary-search
// device-count bound, both evaluated against the node's effective variable
// bounds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lp/model.hpp"

namespace cohls::milp {

/// Device-slot bitset used by the combinatorial bounds. Fixed-width 64-bit:
/// per-layer models are capped well below 64 visible slots, and a flat
/// integer keeps the energetic-reasoning inner loops branch-free.
using DeviceMask = std::uint64_t;

/// Interface the solver calls once per node, before the LP relaxation.
/// `lower`/`upper` are the node's effective variable bounds in the ORIGINAL
/// model space (branch-path tightenings already applied; presolve-fixed
/// columns collapsed to their fixed value). Implementations return a valid
/// lower bound on the objective of every integral solution inside that box —
/// +infinity when the box provably contains none — or -infinity when nothing
/// beyond the LP bound is known. Implementations must be thread-safe: a
/// parallel search calls them concurrently from every worker.
class NodeBoundProvider {
 public:
  virtual ~NodeBoundProvider() = default;
  [[nodiscard]] virtual double objective_lower_bound(
      const std::vector<double>& lower, const std::vector<double>& upper) const = 0;
};

/// Combinatorial bounds for disjunctive device-conflict scheduling MILPs
/// (the per-layer model of Sec. 4). Built once per model by the code that
/// owns the model's structure (core::IlpLayerModel), then shared read-only
/// by all search workers.
class SchedulingBounds final : public NodeBoundProvider {
 public:
  struct Task {
    /// Integer start-time column.
    lp::Col start = -1;
    /// Device-conflict occupation: duration plus outgoing transport reserve.
    /// Two tasks on one device must keep their occupation intervals disjoint.
    double occupation = 0.0;
    /// Pure duration; the makespan covers start + duration (the outgoing
    /// reserve may run past the makespan).
    double duration = 0.0;
    /// Binding column per visible device slot; -1 marks a slot the task is
    /// structurally incompatible with (never bindable).
    std::vector<lp::Col> binding;
  };

  struct Config {
    std::vector<Task> tasks;
    /// Makespan epigraph column and its objective weight (C_t).
    lp::Col makespan = -1;
    double makespan_weight = 0.0;
    /// Device slots that cost nothing to use (inherited fixed devices and
    /// hint slots) vs freely-configurable new slots, and the cheapest
    /// integration cost any used new slot must pay.
    int free_devices = 0;
    int new_devices = 0;
    double min_new_device_cost = 0.0;
    /// Columns whose objective contribution pays for new-device integration
    /// (per-slot used binaries or cost aggregates). The device-counting term
    /// already charges min_new_device_cost per extra device, so these columns
    /// are excluded from the trivial box bound and folded into that term —
    /// otherwise a branch that fixes a used binary to 1 would be charged
    /// twice, overshooting the true subtree optimum.
    std::vector<lp::Col> new_device_cols;
    /// Optional task-level refinement of the device payment term. When
    /// non-empty, `task_new_cost[t]` is a floor on the payment of any NEW
    /// slot hosting task t (its cheapest compatible configuration).
    /// `distinct_tasks` lists tasks that must occupy pairwise-distinct
    /// slots (the paper's indeterminate parallel rule): their floors SUM,
    /// except that tasks reaching a slot in `free_slot_mask` may escape
    /// payment — at most as many as there are reachable free slots.
    std::vector<double> task_new_cost;
    std::vector<int> distinct_tasks;
    DeviceMask free_slot_mask = 0;
    /// Full objective coefficient vector of the model (copied; the provider
    /// outlives any reference the caller holds).
    std::vector<double> objective;
  };

  explicit SchedulingBounds(Config config);

  [[nodiscard]] double objective_lower_bound(
      const std::vector<double>& lower, const std::vector<double>& upper) const override;

  // --- exposed for the bound-validity test suite ---------------------------

  /// Lower bound on the makespan achievable with at most `devices` usable
  /// slots, given per-task windows [est, lst] and allowed-device masks.
  /// Returns +infinity when the interval (energetic) test proves no such
  /// schedule exists.
  [[nodiscard]] double makespan_bound(const std::vector<double>& lower,
                                      const std::vector<double>& upper,
                                      int devices) const;

  /// Fujita-style binary search: the smallest device count for which the
  /// interval test admits a schedule finishing by `deadline`. Returns one
  /// past the visible device count when even the full set fails.
  [[nodiscard]] int min_devices_for_deadline(const std::vector<double>& lower,
                                             const std::vector<double>& upper,
                                             double deadline) const;

 private:
  struct Window {
    int task = -1;        ///< index into config_.tasks (groups are subsets, so
                          ///< a window's position does not identify its task)
    double est = 0.0;     ///< earliest start (node lower bound on the start col)
    double lst = 0.0;     ///< latest start (node upper bound on the start col)
    DeviceMask mask = 0;  ///< allowed device slots under the node's fixings
  };

  /// Derives per-task windows and allowed-device masks from the node box.
  /// Returns false when some task has no allowed device (node infeasible).
  [[nodiscard]] bool derive_windows(const std::vector<double>& lower,
                                    const std::vector<double>& upper,
                                    std::vector<Window>& out) const;

  /// The Fernandez / energetic-reasoning feasibility test: can every task
  /// run inside its window on `devices` machines, treating windows' latest
  /// starts as min(lst, deadline - duration)?
  [[nodiscard]] bool intervals_feasible(const std::vector<Window>& windows,
                                        double deadline, int devices) const;

  Config config_;
  int device_count_ = 0;  ///< free + new visible slots
  /// Per-column flag: true for members of config_.new_device_cols.
  std::vector<bool> pays_for_device_;
};

}  // namespace cohls::milp
