#include "milp/bounds.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>

#include "util/check.hpp"

namespace cohls::milp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-6;

int popcount(DeviceMask mask) { return std::popcount(mask); }

}  // namespace

SchedulingBounds::SchedulingBounds(Config config) : config_(std::move(config)) {
  device_count_ = config_.free_devices + config_.new_devices;
  COHLS_EXPECT(device_count_ >= 1, "scheduling bounds need at least one device slot");
  COHLS_EXPECT(device_count_ <= 64, "device masks are 64-bit");
  for (const Task& task : config_.tasks) {
    COHLS_EXPECT(static_cast<int>(task.binding.size()) == device_count_,
                 "every task needs one binding column per visible device");
    COHLS_EXPECT(task.start >= 0, "every task needs a start column");
  }
  pays_for_device_.assign(config_.objective.size(), false);
  for (const lp::Col col : config_.new_device_cols) {
    COHLS_EXPECT(col >= 0 && static_cast<std::size_t>(col) < pays_for_device_.size(),
                 "new-device cost column out of range");
    pays_for_device_[static_cast<std::size_t>(col)] = true;
  }
  COHLS_EXPECT(config_.task_new_cost.empty() ||
                   config_.task_new_cost.size() == config_.tasks.size(),
               "task cost floors must be per-task when given");
  for (const int t : config_.distinct_tasks) {
    COHLS_EXPECT(t >= 0 && static_cast<std::size_t>(t) < config_.tasks.size(),
                 "distinct task index out of range");
  }
}

bool SchedulingBounds::derive_windows(const std::vector<double>& lower,
                                      const std::vector<double>& upper,
                                      std::vector<Window>& out) const {
  out.clear();
  out.reserve(config_.tasks.size());
  for (std::size_t t = 0; t < config_.tasks.size(); ++t) {
    const Task& task = config_.tasks[t];
    Window w;
    w.task = static_cast<int>(t);
    w.est = lower[static_cast<std::size_t>(task.start)];
    w.lst = upper[static_cast<std::size_t>(task.start)];
    if (w.lst < w.est - kEps) {
      return false;
    }
    DeviceMask allowed = 0;
    DeviceMask forced = 0;
    for (int j = 0; j < device_count_; ++j) {
      const lp::Col col = task.binding[static_cast<std::size_t>(j)];
      if (col < 0) {
        continue;  // structurally incompatible slot
      }
      const std::size_t c = static_cast<std::size_t>(col);
      if (upper[c] > 0.5) {
        allowed |= DeviceMask{1} << j;
      }
      if (lower[c] > 0.5) {
        forced |= DeviceMask{1} << j;
      }
    }
    // A branch that fixed a binding variable to 1 pins the task to that
    // slot; fixing two is an inconsistent path (bind-once makes it empty).
    if (forced != 0) {
      allowed &= forced;
      if (popcount(forced) > 1) {
        return false;
      }
    }
    if (allowed == 0) {
      return false;
    }
    w.mask = allowed;
    out.push_back(w);
  }
  return true;
}

// The Fernandez / energetic-reasoning test. For every interval [a, b) drawn
// from the tasks' release and completion event points, the occupation mass
// that MUST fall inside the interval — the smaller of the task's left- and
// right-shifted overlaps — cannot exceed devices * (b - a).
bool SchedulingBounds::intervals_feasible(const std::vector<Window>& windows,
                                          double deadline, int devices) const {
  std::vector<double> starts;   // event releases
  std::vector<double> ends;     // event completions
  std::vector<double> est(windows.size());
  std::vector<double> lst(windows.size());
  std::vector<double> occ(windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const Task& task = config_.tasks[static_cast<std::size_t>(windows[i].task)];
    est[i] = windows[i].est;
    lst[i] = std::min(windows[i].lst, deadline - task.duration);
    if (lst[i] < est[i] - kEps) {
      return false;  // the task cannot finish by the deadline
    }
    occ[i] = task.occupation;
    starts.push_back(est[i]);
    ends.push_back(lst[i] + occ[i]);
  }
  for (const double a : starts) {
    for (const double b : ends) {
      if (b <= a + kEps) {
        continue;
      }
      double mandatory = 0.0;
      for (std::size_t i = 0; i < windows.size(); ++i) {
        const double left = est[i] + occ[i] - a;   // left-shifted tail in [a, b)
        const double right = b - lst[i];           // right-shifted head in [a, b)
        const double part = std::min(std::min(occ[i], b - a), std::min(left, right));
        if (part > 0.0) {
          mandatory += part;
        }
      }
      if (mandatory > static_cast<double>(devices) * (b - a) + kEps) {
        return false;
      }
    }
  }
  return true;
}

double SchedulingBounds::makespan_bound(const std::vector<double>& lower,
                                        const std::vector<double>& upper,
                                        int devices) const {
  std::vector<Window> windows;
  if (!derive_windows(lower, upper, windows)) {
    return kInf;
  }
  // Candidate device sets: each task's own allowed mask plus the union.
  // Tasks whose allowed devices all lie inside a candidate mask compete for
  // only that many slots, which is where branch-path fixings create strong
  // bounds (several tasks pinned to one device sum their occupations).
  std::vector<DeviceMask> masks;
  DeviceMask all = 0;
  for (const Window& w : windows) {
    all |= w.mask;
    if (std::find(masks.begin(), masks.end(), w.mask) == masks.end()) {
      masks.push_back(w.mask);
    }
  }
  if (std::find(masks.begin(), masks.end(), all) == masks.end()) {
    masks.push_back(all);
  }

  double trivial = 0.0;
  double horizon = 0.0;
  for (const Window& w : windows) {
    const double duration = config_.tasks[static_cast<std::size_t>(w.task)].duration;
    trivial = std::max(trivial, w.est + duration);
    horizon = std::max(horizon, w.lst + duration);
  }

  double bound = trivial;
  std::vector<Window> group;
  for (const DeviceMask mask : masks) {
    group.clear();
    double group_low = trivial;
    for (const Window& w : windows) {
      if ((w.mask & ~mask) == 0) {
        group.push_back(w);
      }
    }
    if (group.empty()) {
      continue;
    }
    const int capacity = std::min(devices, popcount(mask));
    if (capacity <= 0) {
      return kInf;
    }
    // Binary search the smallest integral deadline the interval test admits.
    long lo = static_cast<long>(std::ceil(group_low - kEps));
    long hi = static_cast<long>(std::ceil(horizon + kEps));
    if (!intervals_feasible(group, static_cast<double>(hi), capacity)) {
      return kInf;  // even the loosest deadline fails: the node box is empty
    }
    while (lo < hi) {
      const long mid = lo + (hi - lo) / 2;
      if (intervals_feasible(group, static_cast<double>(mid), capacity)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    bound = std::max(bound, static_cast<double>(lo));
  }
  return bound;
}

int SchedulingBounds::min_devices_for_deadline(const std::vector<double>& lower,
                                               const std::vector<double>& upper,
                                               double deadline) const {
  std::vector<Window> windows;
  if (!derive_windows(lower, upper, windows)) {
    return device_count_ + 1;
  }
  int lo = 1;
  int hi = device_count_;
  const auto feasible = [&](int m) {
    return makespan_bound(lower, upper, m) <= deadline + kEps;
  };
  if (!feasible(hi)) {
    return device_count_ + 1;
  }
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

double SchedulingBounds::objective_lower_bound(const std::vector<double>& lower,
                                               const std::vector<double>& upper) const {
  // Trivial box bound on every column except the makespan (whose lower bound
  // the combinatorial reasoning below replaces) and the new-device payment
  // columns (folded into the device-counting term as `committed` so branch
  // fixings on them are not charged twice).
  double base = 0.0;
  double committed = 0.0;
  for (std::size_t c = 0; c < config_.objective.size(); ++c) {
    if (static_cast<lp::Col>(c) == config_.makespan) {
      continue;
    }
    const double w = config_.objective[c];
    if (w == 0.0) {
      continue;
    }
    const double contribution = w > 0.0 ? w * lower[c] : w * upper[c];
    if (!std::isfinite(contribution)) {
      return -kInf;  // an unbounded cheap column: nothing beyond the LP bound
    }
    if (pays_for_device_[c]) {
      committed += contribution;
    } else {
      base += contribution;
    }
  }

  const std::size_t mk = static_cast<std::size_t>(config_.makespan);
  const double weight = config_.makespan >= 0 ? config_.objective[mk] : 0.0;
  const double mk_floor = config_.makespan >= 0 ? lower[mk] : 0.0;
  const double mk_ceiling = config_.makespan >= 0 ? upper[mk] : kInf;

  // Distinct-task payment floor. Every distinct task occupies its own slot,
  // and a NEW slot hosting it pays at least the task's configuration floor.
  // At most as many tasks as there are reachable free slots escape payment,
  // and only tasks whose allowed mask still contains a free slot are
  // eligible — the cheapest case for a solution is to host the most
  // expensive eligible tasks free, so that is what we credit.
  double distinct_floor = 0.0;
  int distinct_count = 0;
  if (!config_.distinct_tasks.empty()) {
    std::vector<Window> windows;
    if (!derive_windows(lower, upper, windows)) {
      return kInf;  // the node box is empty
    }
    distinct_count = static_cast<int>(config_.distinct_tasks.size());
    DeviceMask reachable_free = 0;
    std::vector<double> eligible;
    for (const int t : config_.distinct_tasks) {
      const double cost =
          config_.task_new_cost.empty() ? 0.0
                                        : config_.task_new_cost[static_cast<std::size_t>(t)];
      distinct_floor += cost;
      const DeviceMask free_options =
          windows[static_cast<std::size_t>(t)].mask & config_.free_slot_mask;
      if (free_options != 0) {
        reachable_free |= free_options;
        eligible.push_back(cost);
      }
    }
    std::sort(eligible.begin(), eligible.end(), std::greater<>());
    const std::size_t escapes =
        std::min(eligible.size(), static_cast<std::size_t>(popcount(reachable_free)));
    for (std::size_t e = 0; e < escapes; ++e) {
      distinct_floor -= eligible[e];
    }
  }
  const double cost_floor = std::max(committed, distinct_floor);

  // Fujita direction: a schedule that uses u devices pays for the new slots
  // beyond the free ones — and never less than the payment the branch path
  // already committed or the distinct tasks force — and cannot beat the
  // u-device makespan bound. The best any solution can do is the cheapest
  // combination over u; a u whose makespan bound overshoots the node's
  // makespan ceiling is impossible, and so is any u below the number of
  // pairwise-distinct tasks.
  double best = kInf;
  for (int u = device_count_; u >= 1; --u) {
    if (u < distinct_count) {
      break;  // fewer slots than pairwise-distinct tasks
    }
    const double mk_lb = makespan_bound(lower, upper, u);
    if (!std::isfinite(mk_lb) || mk_lb > mk_ceiling + kEps) {
      break;  // fewer devices only lengthen the schedule further
    }
    const double counted =
        static_cast<double>(std::max(0, u - config_.free_devices)) *
        config_.min_new_device_cost;
    best = std::min(best,
                    weight * std::max(mk_floor, mk_lb) + std::max(cost_floor, counted));
    if (counted <= cost_floor) {
      break;  // the cost term hit its floor: smaller u only raises the
              // makespan term
    }
  }
  if (!std::isfinite(best)) {
    return kInf;  // no device count admits a schedule inside the node box
  }
  return base + best;
}

}  // namespace cohls::milp
