#include "milp/model.hpp"

#include <cmath>

namespace cohls::milp {

lp::Col MilpModel::add_variable(VarKind kind, double lower, double upper, double objective,
                                std::string name) {
  if (kind == VarKind::Binary) {
    COHLS_EXPECT(lower >= 0.0 && upper <= 1.0, "binary bounds must lie within [0, 1]");
  }
  const lp::Col c = lp_.add_variable(lower, upper, objective, std::move(name));
  kinds_.push_back(kind);
  return c;
}

bool MilpModel::is_feasible(const std::vector<double>& x, double tolerance) const {
  if (!lp_.is_feasible(x, tolerance)) {
    return false;
  }
  for (lp::Col c = 0; c < variable_count(); ++c) {
    if (is_integer(c)) {
      const double v = x[static_cast<std::size_t>(c)];
      if (std::abs(v - std::round(v)) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace cohls::milp
