#include "milp/dive.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cohls::milp {

namespace {

/// The integer column whose value is closest to integral without being
/// integral — fixing it perturbs the relaxation least, which is what keeps
/// dive re-solves down to a handful of dual pivots each.
int least_fractional(const MilpModel& model, const std::vector<double>& x,
                     double tolerance) {
  int best = -1;
  double best_frac = 1.0;
  for (lp::Col c = 0; c < model.variable_count(); ++c) {
    if (!model.is_integer(c)) {
      continue;
    }
    const double v = x[static_cast<std::size_t>(c)];
    const double frac = std::abs(v - std::round(v));
    if (frac > tolerance && frac < best_frac) {
      best_frac = frac;
      best = c;
    }
  }
  return best;
}

}  // namespace

DiveResult dive_for_incumbent(const MilpModel& model, const DiveHooks& hooks,
                              const lp::LpSolution& root_relax,
                              double integrality_tolerance,
                              double feasibility_tolerance, long max_lp_solves) {
  COHLS_EXPECT(hooks.resolve && hooks.set_bounds && hooks.lower != nullptr &&
                   hooks.upper != nullptr,
               "dive hooks must be fully wired");
  DiveResult out;
  if (root_relax.status != lp::LpStatus::Optimal) {
    return out;
  }
  lp::LpSolution relax = root_relax;
  while (true) {
    const int col = least_fractional(model, relax.values, integrality_tolerance);
    if (col < 0) {
      // Integral: snap and validate before claiming an incumbent.
      std::vector<double> snapped = relax.values;
      for (lp::Col c = 0; c < model.variable_count(); ++c) {
        if (model.is_integer(c)) {
          snapped[static_cast<std::size_t>(c)] =
              std::round(snapped[static_cast<std::size_t>(c)]);
        }
      }
      if (!model.is_feasible(snapped, feasibility_tolerance)) {
        return out;
      }
      out.objective = model.lp().objective_value(snapped);
      out.values = std::move(snapped);
      out.found = true;
      return out;
    }
    if (out.lp_solves >= max_lp_solves) {
      return out;  // budget spent before reaching an integral point
    }

    const std::size_t cs = static_cast<std::size_t>(col);
    const double value = relax.values[cs];
    const double lo = (*hooks.lower)[cs];
    const double hi = (*hooks.upper)[cs];
    const double nearest =
        std::clamp(std::round(value), std::ceil(lo), std::floor(hi));
    hooks.set_bounds(col, nearest, nearest);
    ++out.lp_solves;
    relax = hooks.resolve();
    if (relax.status == lp::LpStatus::Optimal) {
      continue;
    }
    // One backtrack per column: flip to the other neighboring integer, if it
    // exists inside the box. A second failure aborts the dive — the branch
    // search proper will sort the region out.
    const double other = nearest > value ? nearest - 1.0 : nearest + 1.0;
    if (other < lo - 1e-9 || other > hi + 1e-9 || out.lp_solves >= max_lp_solves) {
      return out;
    }
    hooks.set_bounds(col, other, other);
    ++out.lp_solves;
    relax = hooks.resolve();
    if (relax.status != lp::LpStatus::Optimal) {
      return out;
    }
  }
}

}  // namespace cohls::milp
