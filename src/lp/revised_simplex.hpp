// Sparse revised simplex with native variable bounds. The constraint matrix
// is stored once in compressed-sparse-column form; the basis inverse is kept
// as a dense refactorized inverse plus a product-form eta file, refactorized
// periodically. Compared with the dense tableau (lp/simplex.cpp, kept behind
// SimplexOptions::algorithm for differential testing) pricing walks sparse
// columns instead of O(rows x cols) tableau sweeps, and a bounded-variable
// dual simplex entry point re-solves from a caller-supplied starting basis —
// the branch-and-bound MILP warm-starts every child node from its parent's
// optimal basis after a single branching bound change.
#pragma once

#include <memory>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cohls::lp {

/// Status of one column (structural or logical) in a basis snapshot.
enum class BasisStatus : unsigned char {
  AtLower,  ///< nonbasic at its (finite) lower bound
  AtUpper,  ///< nonbasic at its (finite) upper bound
  Basic,
  Free,  ///< nonbasic free variable resting at zero
};

/// A resumable basis: which column sits in each basis slot plus a status for
/// every column (structural columns first, then one logical per row). A
/// default-constructed basis is "empty" and means "start cold".
struct Basis {
  std::vector<int> basic;               ///< size = rows; column per basis slot
  std::vector<BasisStatus> status;      ///< size = structural + logical columns
  [[nodiscard]] bool empty() const { return basic.empty() && status.empty(); }
};

/// Work counters for one solve (and accumulated across solves).
struct SolveStats {
  long primal_pivots = 0;
  long dual_pivots = 0;
  long refactorizations = 0;
  long warm_solves = 0;       ///< solves that started from a supplied basis
  long warm_degraded = 0;     ///< warm solves that fell back to a cold solve
  long cold_solves = 0;

  void accumulate(const SolveStats& other) {
    primal_pivots += other.primal_pivots;
    dual_pivots += other.dual_pivots;
    refactorizations += other.refactorizations;
    warm_solves += other.warm_solves;
    warm_degraded += other.warm_degraded;
    cold_solves += other.cold_solves;
  }
};

/// A reusable revised-simplex instance. The sparse matrix is built once from
/// the model; variable bounds may then be mutated between solves (branch and
/// bound tightens one bound per node) without rebuilding anything else.
///
/// Internally an instance is split into an immutable model view (CSC
/// columns, objective, right-hand sides, original bounds) and mutable
/// per-instance state (current bounds, basis, factorization, eta file,
/// scratch). clone_workspace() shares the former and duplicates the latter,
/// so a parallel branch and bound can hand each worker thread a private
/// workspace over one copy of the matrix.
class RevisedSimplex {
 public:
  explicit RevisedSimplex(const LpModel& model, const SimplexOptions& options = {});
  ~RevisedSimplex();
  RevisedSimplex(RevisedSimplex&&) noexcept;
  RevisedSimplex& operator=(RevisedSimplex&&) noexcept;

  /// A fresh solver sharing this instance's immutable matrix read-only. The
  /// clone starts from the model's original bounds with no basis and empty
  /// stats; it is safe to solve on a different thread than the original as
  /// long as neither outlives the other's shared matrix (enforced by a
  /// shared_ptr spine). Bound overrides applied to this instance are NOT
  /// inherited.
  [[nodiscard]] RevisedSimplex clone_workspace() const;

  /// Overrides the bounds of a structural variable for subsequent solves.
  /// (The LpModel passed to the constructor is not modified.)
  void set_bounds(Col c, double lower, double upper);

  /// Objective cutoff for warm (dual) re-solves: a dual iteration whose
  /// objective — a monotonically nondecreasing lower bound on the LP
  /// optimum — reaches `cutoff` stops immediately with
  /// LpStatus::CutoffReached instead of solving to optimality. Sticky until
  /// changed; +infinity (the default, restored on clone) disables it. Cold
  /// primal solves ignore the cutoff.
  void set_objective_cutoff(double cutoff);

  /// Cold solve: bounded-variable primal simplex, phase 1 from the all-
  /// logical basis, then phase 2.
  [[nodiscard]] LpSolution solve();

  /// Warm solve: installs `start` and re-solves with the bounded-variable
  /// dual simplex (the basis of an optimal parent stays dual feasible after
  /// bound tightenings, so typically only a handful of dual pivots run).
  /// Falls back to a cold primal solve when the basis cannot be installed or
  /// the dual iteration hits its limit; the result is always as trustworthy
  /// as solve().
  [[nodiscard]] LpSolution solve_from(const Basis& start);

  /// Basis at the end of the last Optimal solve (empty otherwise).
  [[nodiscard]] const Basis& basis() const;

  /// Counters for the most recent solve / across all solves so far.
  [[nodiscard]] const SolveStats& last_stats() const;
  [[nodiscard]] const SolveStats& total_stats() const;

 private:
  class Impl;
  explicit RevisedSimplex(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience mirroring solve_lp, using the revised simplex.
[[nodiscard]] LpSolution solve_lp_revised(const LpModel& model,
                                          const SimplexOptions& options = {});

}  // namespace cohls::lp
