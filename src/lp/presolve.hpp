// LP presolve: cheap model reductions applied before the simplex. The
// per-layer synthesis models contain many fixed binaries (forbidden
// bindings pinned to zero, sealed configuration variables), empty rows and
// singleton rows; eliminating them shrinks the dense tableau the simplex
// pivots over.
#pragma once

#include <optional>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace cohls::lp {

/// Outcome of presolving a model.
class Presolved {
 public:
  /// True when presolve alone proved the model infeasible.
  [[nodiscard]] bool infeasible() const { return infeasible_; }

  /// The reduced model (valid only when !infeasible()).
  [[nodiscard]] const LpModel& model() const { return reduced_; }

  /// Number of columns / rows eliminated.
  [[nodiscard]] int removed_columns() const { return removed_columns_; }
  [[nodiscard]] int removed_rows() const { return removed_rows_; }

  /// Lifts a reduced-space solution back to the original variable space.
  [[nodiscard]] std::vector<double> restore(const std::vector<double>& reduced) const;

  /// Per-column mapping into the reduced model (valid when !infeasible()).
  /// A fixed column was eliminated; its constant is `fixed_value`. A live
  /// column moved to `reduced_column`. Branch and bound uses this to carry
  /// integrality marks and warm starts into the reduced space.
  [[nodiscard]] int original_column_count() const { return static_cast<int>(origins_.size()); }
  [[nodiscard]] bool column_fixed(Col original) const {
    return origins_[check_origin(original)].fixed;
  }
  [[nodiscard]] double fixed_value(Col original) const {
    return origins_[check_origin(original)].value;
  }
  /// Reduced index of a surviving column; -1 when the column was fixed.
  [[nodiscard]] int reduced_column(Col original) const {
    return origins_[check_origin(original)].reduced_index;
  }

 private:
  friend Presolved presolve(const LpModel& original);

  [[nodiscard]] std::size_t check_origin(Col c) const {
    COHLS_EXPECT(c >= 0 && static_cast<std::size_t>(c) < origins_.size(),
                 "original column index out of range");
    return static_cast<std::size_t>(c);
  }

  LpModel reduced_;
  bool infeasible_ = false;
  int removed_columns_ = 0;
  int removed_rows_ = 0;
  /// Original value per original column: either a fixed constant, or the
  /// index of the reduced column holding it.
  struct ColumnOrigin {
    bool fixed = false;
    double value = 0.0;  // when fixed
    int reduced_index = -1;
  };
  std::vector<ColumnOrigin> origins_;
};

/// Applies, to a fixpoint: removal of fixed columns (lb == ub, substituted
/// into rows), empty rows (dropped or proven infeasible) and singleton rows
/// (turned into bound tightenings, which may fix further columns).
[[nodiscard]] Presolved presolve(const LpModel& original);

/// Convenience: presolve + solve + restore. Statuses mirror solve_lp.
[[nodiscard]] LpSolution solve_lp_with_presolve(const LpModel& model,
                                                const SimplexOptions& options = {});

}  // namespace cohls::lp
