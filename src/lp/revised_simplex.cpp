#include "lp/revised_simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/check.hpp"

namespace cohls::lp {

namespace {

/// Pivot elements smaller than this are rejected in ratio tests.
constexpr double kPivotTol = 1e-9;
/// Singularity threshold for refactorization pivots.
constexpr double kSingularTol = 1e-11;
/// Infeasibility above this after phase 1 means the LP is infeasible
/// (mirrors the dense solver's phase-1 threshold).
constexpr double kInfeasibleTol = 1e-6;

}  // namespace

/// The immutable half of a revised-simplex instance: sparse structural
/// columns (CSC), objective, right-hand sides and the model's original
/// bounds (structural columns first, then one logical per row). Workspaces
/// cloned off one instance share this read-only, so concurrent
/// branch-and-bound workers pay for a single copy of the matrix.
struct SharedCscModel {
  int n = 0;      ///< structural columns
  int m = 0;      ///< rows (= logical columns)
  int total = 0;  ///< n + m
  std::vector<int> col_start;
  std::vector<int> row_idx;
  std::vector<double> val;
  std::vector<double> cost;        ///< size total (logicals cost 0)
  std::vector<double> b;           ///< row right-hand sides
  std::vector<double> base_lower;  ///< size total, includes logical bounds
  std::vector<double> base_upper;
};

namespace {

std::shared_ptr<const SharedCscModel> build_csc(const LpModel& model) {
  auto csc = std::make_shared<SharedCscModel>();
  const int n = csc->n = model.variable_count();
  const int m = csc->m = model.constraint_count();
  const int total = csc->total = n + m;
  csc->base_lower.resize(static_cast<std::size_t>(total));
  csc->base_upper.resize(static_cast<std::size_t>(total));
  csc->cost.assign(static_cast<std::size_t>(total), 0.0);
  for (Col c = 0; c < n; ++c) {
    csc->base_lower[static_cast<std::size_t>(c)] = model.lower_bound(c);
    csc->base_upper[static_cast<std::size_t>(c)] = model.upper_bound(c);
    csc->cost[static_cast<std::size_t>(c)] = model.objective_coefficient(c);
  }
  csc->b.resize(static_cast<std::size_t>(m));
  for (Row r = 0; r < m; ++r) {
    csc->b[static_cast<std::size_t>(r)] = model.row_rhs(r);
    const std::size_t logical = static_cast<std::size_t>(n + r);
    switch (model.row_sense(r)) {
      case RowSense::LessEqual:
        csc->base_lower[logical] = 0.0;
        csc->base_upper[logical] = kInfinity;
        break;
      case RowSense::GreaterEqual:
        csc->base_lower[logical] = -kInfinity;
        csc->base_upper[logical] = 0.0;
        break;
      case RowSense::Equal:
        csc->base_lower[logical] = 0.0;
        csc->base_upper[logical] = 0.0;
        break;
    }
  }
  // CSC of the structural columns (the model stores rows).
  std::vector<int> counts(static_cast<std::size_t>(n), 0);
  for (Row r = 0; r < m; ++r) {
    for (const auto& [col, coef] : model.row_terms(r)) {
      if (coef != 0.0) {
        ++counts[static_cast<std::size_t>(col)];
      }
    }
  }
  csc->col_start.assign(static_cast<std::size_t>(n) + 1, 0);
  for (Col c = 0; c < n; ++c) {
    csc->col_start[static_cast<std::size_t>(c) + 1] =
        csc->col_start[static_cast<std::size_t>(c)] + counts[static_cast<std::size_t>(c)];
  }
  csc->row_idx.resize(static_cast<std::size_t>(csc->col_start.back()));
  csc->val.resize(csc->row_idx.size());
  std::vector<int> fill(csc->col_start.begin(), csc->col_start.end() - 1);
  for (Row r = 0; r < m; ++r) {
    for (const auto& [col, coef] : model.row_terms(r)) {
      if (coef == 0.0) {
        continue;
      }
      const int slot = fill[static_cast<std::size_t>(col)]++;
      csc->row_idx[static_cast<std::size_t>(slot)] = r;
      csc->val[static_cast<std::size_t>(slot)] = coef;
    }
  }
  return csc;
}

}  // namespace

class RevisedSimplex::Impl {
 public:
  Impl(std::shared_ptr<const SharedCscModel> shared, const SimplexOptions& options)
      : shared_(std::move(shared)),
        col_start_(shared_->col_start),
        row_idx_(shared_->row_idx),
        val_(shared_->val),
        cost_(shared_->cost),
        b_(shared_->b),
        n_(shared_->n),
        m_(shared_->m),
        total_(shared_->total),
        eps_(options.tolerance),
        options_(options),
        refactor_interval_(std::max(4, options.refactor_interval)),
        lower_(shared_->base_lower),
        upper_(shared_->base_upper) {
    max_iterations_ = options.max_iterations > 0 ? options.max_iterations
                                                 : 200 * (m_ + total_) + 10000;
  }

  Impl(const LpModel& model, const SimplexOptions& options)
      : Impl(build_csc(model), options) {}

  /// A fresh workspace over the same immutable matrix: original bounds, no
  /// basis, zeroed stats.
  [[nodiscard]] std::unique_ptr<Impl> clone_workspace() const {
    return std::make_unique<Impl>(shared_, options_);
  }

  void set_bounds(Col c, double lower, double upper) {
    COHLS_EXPECT(c >= 0 && c < n_, "column index out of range");
    const std::size_t j = static_cast<std::size_t>(c);
    lower_[j] = lower;
    upper_[j] = upper;
    if (!basic_.empty()) {
      sanitize_status(c);
    }
  }

  void set_objective_cutoff(double cutoff) { cutoff_ = cutoff; }

  LpSolution solve() {
    begin_solve(/*warm=*/false);
    reset_to_logical_basis();
    LpSolution out = primal_solve();
    end_solve(out);
    return out;
  }

  LpSolution solve_from(const Basis& start) {
    begin_solve(/*warm=*/true);
    if (!install(start)) {
      return degrade_to_cold();
    }
    if (!dual_feasible()) {
      return degrade_to_cold();
    }
    LpSolution out = dual_solve();
    if (out.status == LpStatus::IterationLimit) {
      return degrade_to_cold();
    }
    end_solve(out);
    return out;
  }

  [[nodiscard]] const Basis& basis() const { return last_basis_; }
  [[nodiscard]] const SolveStats& last_stats() const { return last_stats_; }
  [[nodiscard]] const SolveStats& total_stats() const { return total_stats_; }

 private:
  // --- factorization: dense refactorized inverse + eta file -----------------

  struct Eta {
    int row;
    /// (index, multiplier) pairs; includes (row, 1/pivot).
    std::vector<std::pair<int, double>> entries;
  };

  [[nodiscard]] double* inv_column(int i) {
    return inv0_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(m_);
  }
  [[nodiscard]] const double* inv_column(int i) const {
    return inv0_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(m_);
  }

  void set_identity_factor() {
    inv0_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      inv_column(i)[i] = 1.0;
    }
    etas_.clear();
  }

  /// Rebuilds the dense inverse of the current basis matrix and clears the
  /// eta file. Returns false when the basis is (numerically) singular.
  bool refactor() {
    ++last_stats_.refactorizations;
    // Row-major working copies of B and its inverse-in-progress.
    const std::size_t mm = static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_);
    work_matrix_.assign(mm, 0.0);
    work_inverse_.assign(mm, 0.0);
    auto at = [&](std::vector<double>& a, int r, int c) -> double& {
      return a[static_cast<std::size_t>(r) * static_cast<std::size_t>(m_) +
               static_cast<std::size_t>(c)];
    };
    for (int i = 0; i < m_; ++i) {
      const int col = basic_[static_cast<std::size_t>(i)];
      if (col < n_) {
        for (int k = col_start_[static_cast<std::size_t>(col)];
             k < col_start_[static_cast<std::size_t>(col) + 1]; ++k) {
          at(work_matrix_, row_idx_[static_cast<std::size_t>(k)], i) =
              val_[static_cast<std::size_t>(k)];
        }
      } else {
        at(work_matrix_, col - n_, i) = 1.0;
      }
      at(work_inverse_, i, i) = 1.0;
    }
    // Gauss-Jordan with partial pivoting over the augmented [B | I].
    for (int k = 0; k < m_; ++k) {
      int pivot_row = k;
      double best = std::abs(at(work_matrix_, k, k));
      for (int r = k + 1; r < m_; ++r) {
        const double mag = std::abs(at(work_matrix_, r, k));
        if (mag > best) {
          best = mag;
          pivot_row = r;
        }
      }
      if (best <= kSingularTol) {
        return false;
      }
      if (pivot_row != k) {
        for (int c = 0; c < m_; ++c) {
          std::swap(at(work_matrix_, k, c), at(work_matrix_, pivot_row, c));
          std::swap(at(work_inverse_, k, c), at(work_inverse_, pivot_row, c));
        }
      }
      const double inv_pivot = 1.0 / at(work_matrix_, k, k);
      for (int c = 0; c < m_; ++c) {
        at(work_matrix_, k, c) *= inv_pivot;
        at(work_inverse_, k, c) *= inv_pivot;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == k) {
          continue;
        }
        const double factor = at(work_matrix_, r, k);
        if (factor == 0.0) {
          continue;
        }
        for (int c = 0; c < m_; ++c) {
          at(work_matrix_, r, c) -= factor * at(work_matrix_, k, c);
          at(work_inverse_, r, c) -= factor * at(work_inverse_, k, c);
        }
      }
    }
    inv0_.resize(mm);
    for (int i = 0; i < m_; ++i) {
      double* col = inv_column(i);
      for (int r = 0; r < m_; ++r) {
        col[r] = at(work_inverse_, r, i);
      }
    }
    etas_.clear();
    return true;
  }

  /// v := B^-1 v for a dense v.
  void ftran(std::vector<double>& v) {
    work_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int r = 0; r < m_; ++r) {
      const double vr = v[static_cast<std::size_t>(r)];
      if (vr == 0.0) {
        continue;
      }
      const double* col = inv_column(r);
      for (int i = 0; i < m_; ++i) {
        work_[static_cast<std::size_t>(i)] += vr * col[i];
      }
    }
    apply_etas(work_);
    v.swap(work_);
  }

  void apply_etas(std::vector<double>& v) const {
    for (const Eta& eta : etas_) {
      const double t = v[static_cast<std::size_t>(eta.row)];
      if (t == 0.0) {
        continue;
      }
      for (const auto& [i, mult] : eta.entries) {
        if (i == eta.row) {
          v[static_cast<std::size_t>(i)] = mult * t;
        } else {
          v[static_cast<std::size_t>(i)] += mult * t;
        }
      }
    }
  }

  /// w := B^-1 A_col, exploiting the sparsity of the column.
  void ftran_column(int col, std::vector<double>& w) {
    w.assign(static_cast<std::size_t>(m_), 0.0);
    if (col < n_) {
      for (int k = col_start_[static_cast<std::size_t>(col)];
           k < col_start_[static_cast<std::size_t>(col) + 1]; ++k) {
        const double coef = val_[static_cast<std::size_t>(k)];
        const double* inv = inv_column(row_idx_[static_cast<std::size_t>(k)]);
        for (int i = 0; i < m_; ++i) {
          w[static_cast<std::size_t>(i)] += coef * inv[i];
        }
      }
    } else {
      const double* inv = inv_column(col - n_);
      for (int i = 0; i < m_; ++i) {
        w[static_cast<std::size_t>(i)] = inv[i];
      }
    }
    apply_etas(w);
  }

  /// v := B^-T v.
  void btran(std::vector<double>& v) {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double dot = 0.0;
      for (const auto& [i, mult] : it->entries) {
        dot += mult * v[static_cast<std::size_t>(i)];
      }
      v[static_cast<std::size_t>(it->row)] = dot;
    }
    work_.resize(static_cast<std::size_t>(m_));
    for (int i = 0; i < m_; ++i) {
      const double* col = inv_column(i);
      double dot = 0.0;
      for (int r = 0; r < m_; ++r) {
        dot += col[r] * v[static_cast<std::size_t>(r)];
      }
      work_[static_cast<std::size_t>(i)] = dot;
    }
    v.swap(work_);
  }

  /// y . A_col over the sparse column.
  [[nodiscard]] double column_dot(int col, const std::vector<double>& y) const {
    if (col >= n_) {
      return y[static_cast<std::size_t>(col - n_)];
    }
    double dot = 0.0;
    for (int k = col_start_[static_cast<std::size_t>(col)];
         k < col_start_[static_cast<std::size_t>(col) + 1]; ++k) {
      dot += val_[static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(
                                                    row_idx_[static_cast<std::size_t>(k)])];
    }
    return dot;
  }

  void append_eta(int pivot_slot, const std::vector<double>& w) {
    Eta eta;
    eta.row = pivot_slot;
    const double pivot = w[static_cast<std::size_t>(pivot_slot)];
    COHLS_ASSERT(std::abs(pivot) > kSingularTol, "zero pivot in eta update");
    eta.entries.reserve(8);
    for (int i = 0; i < m_; ++i) {
      const double wi = w[static_cast<std::size_t>(i)];
      if (i == pivot_slot) {
        eta.entries.emplace_back(i, 1.0 / pivot);
      } else if (std::abs(wi) > 1e-13) {
        eta.entries.emplace_back(i, -wi / pivot);
      }
    }
    etas_.push_back(std::move(eta));
  }

  /// True when the eta file is due for compaction; refactorizes and
  /// recomputes the basic values.
  bool maybe_refactor() {
    if (static_cast<int>(etas_.size()) < refactor_interval_) {
      return true;
    }
    if (!refactor()) {
      return false;
    }
    compute_basics();
    return true;
  }

  // --- basis state ----------------------------------------------------------

  void reset_to_logical_basis() {
    basic_.resize(static_cast<std::size_t>(m_));
    status_.assign(static_cast<std::size_t>(total_), BasisStatus::AtLower);
    pos_.assign(static_cast<std::size_t>(total_), -1);
    for (Col c = 0; c < n_; ++c) {
      status_[static_cast<std::size_t>(c)] = default_nonbasic_status(c);
    }
    for (int r = 0; r < m_; ++r) {
      const int logical = n_ + r;
      basic_[static_cast<std::size_t>(r)] = logical;
      status_[static_cast<std::size_t>(logical)] = BasisStatus::Basic;
      pos_[static_cast<std::size_t>(logical)] = r;
    }
    set_identity_factor();
    compute_basics();
  }

  [[nodiscard]] BasisStatus default_nonbasic_status(int j) const {
    const std::size_t s = static_cast<std::size_t>(j);
    if (std::isfinite(lower_[s])) {
      return BasisStatus::AtLower;
    }
    if (std::isfinite(upper_[s])) {
      return BasisStatus::AtUpper;
    }
    return BasisStatus::Free;
  }

  /// Repairs a nonbasic status that no longer matches the bounds (after a
  /// set_bounds between solves).
  void sanitize_status(int j) {
    const std::size_t s = static_cast<std::size_t>(j);
    if (s >= status_.size() || status_[s] == BasisStatus::Basic) {
      return;
    }
    if (status_[s] == BasisStatus::AtLower && !std::isfinite(lower_[s])) {
      status_[s] = default_nonbasic_status(j);
    } else if (status_[s] == BasisStatus::AtUpper && !std::isfinite(upper_[s])) {
      status_[s] = default_nonbasic_status(j);
    } else if (status_[s] == BasisStatus::Free &&
               (std::isfinite(lower_[s]) || std::isfinite(upper_[s]))) {
      status_[s] = default_nonbasic_status(j);
    }
  }

  [[nodiscard]] double nonbasic_value(int j) const {
    switch (status_[static_cast<std::size_t>(j)]) {
      case BasisStatus::AtLower: return lower_[static_cast<std::size_t>(j)];
      case BasisStatus::AtUpper: return upper_[static_cast<std::size_t>(j)];
      case BasisStatus::Free: return 0.0;
      case BasisStatus::Basic: break;
    }
    COHLS_ASSERT(false, "basic column has no nonbasic value");
    return 0.0;
  }

  void compute_basics() {
    rhs_work_ = b_;
    for (int j = 0; j < total_; ++j) {
      if (status_[static_cast<std::size_t>(j)] == BasisStatus::Basic) {
        continue;
      }
      const double value = nonbasic_value(j);
      if (value == 0.0) {
        continue;
      }
      if (j < n_) {
        for (int k = col_start_[static_cast<std::size_t>(j)];
             k < col_start_[static_cast<std::size_t>(j) + 1]; ++k) {
          rhs_work_[static_cast<std::size_t>(row_idx_[static_cast<std::size_t>(k)])] -=
              val_[static_cast<std::size_t>(k)] * value;
        }
      } else {
        rhs_work_[static_cast<std::size_t>(j - n_)] -= value;
      }
    }
    ftran(rhs_work_);
    xB_ = rhs_work_;
  }

  /// Installs a caller-supplied basis. Reuses the current factorization when
  /// the basic set is unchanged (the first-child case in depth-first branch
  /// and bound); otherwise refactorizes from scratch.
  bool install(const Basis& start) {
    if (static_cast<int>(start.basic.size()) != m_ ||
        static_cast<int>(start.status.size()) != total_) {
      return false;
    }
    int basic_count = 0;
    for (int j = 0; j < total_; ++j) {
      if (start.status[static_cast<std::size_t>(j)] == BasisStatus::Basic) {
        ++basic_count;
      }
    }
    if (basic_count != m_) {
      return false;
    }
    for (int i = 0; i < m_; ++i) {
      const int col = start.basic[static_cast<std::size_t>(i)];
      if (col < 0 || col >= total_ ||
          start.status[static_cast<std::size_t>(col)] != BasisStatus::Basic) {
        return false;
      }
    }
    const bool same_basic = basic_ == start.basic && !inv0_.empty();
    status_ = start.status;
    pos_.assign(static_cast<std::size_t>(total_), -1);
    for (int i = 0; i < m_; ++i) {
      pos_[static_cast<std::size_t>(start.basic[static_cast<std::size_t>(i)])] = i;
    }
    for (int j = 0; j < total_; ++j) {
      sanitize_status(j);
    }
    if (!same_basic) {
      basic_ = start.basic;
      if (!refactor()) {
        return false;
      }
    }
    compute_basics();
    return true;
  }

  // --- primal simplex -------------------------------------------------------

  [[nodiscard]] bool is_fixed(int j) const {
    const std::size_t s = static_cast<std::size_t>(j);
    return upper_[s] - lower_[s] <= 0.0;
  }

  LpSolution primal_solve() {
    LpSolution out;
    LpStatus st = primal_loop(/*phase1=*/true);
    if (st == LpStatus::Infeasible || st == LpStatus::IterationLimit) {
      out.status = st;
      out.iterations = static_cast<int>(solve_iterations());
      return out;
    }
    st = primal_loop(/*phase1=*/false);
    out.status = st == LpStatus::Optimal ? LpStatus::Optimal : st;
    out.iterations = static_cast<int>(solve_iterations());
    if (out.status == LpStatus::Optimal) {
      finalize(out);
    }
    return out;
  }

  /// One primal phase. Phase 1 minimizes the sum of bound violations of the
  /// basic variables (no artificial columns); phase 2 minimizes the real
  /// objective once every basic variable is within its bounds.
  LpStatus primal_loop(bool phase1) {
    int degenerate_streak = 0;
    bool bland = false;
    while (true) {
      if (solve_iterations() >= max_iterations_) {
        return LpStatus::IterationLimit;
      }
      // Cost of the basic variables for this phase.
      double infeasibility = 0.0;
      y_.assign(static_cast<std::size_t>(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        const int col = basic_[static_cast<std::size_t>(i)];
        const std::size_t s = static_cast<std::size_t>(col);
        const double x = xB_[static_cast<std::size_t>(i)];
        double c = 0.0;
        if (phase1) {
          if (x < lower_[s] - eps_) {
            c = -1.0;
            infeasibility += lower_[s] - x;
          } else if (x > upper_[s] + eps_) {
            c = 1.0;
            infeasibility += x - upper_[s];
          }
        } else {
          c = cost_[s];
        }
        y_[static_cast<std::size_t>(i)] = c;
      }
      if (phase1 && infeasibility <= eps_) {
        return LpStatus::Optimal;  // primal feasible; phase 1 done
      }
      btran(y_);

      // Pricing over the sparse columns.
      int entering = -1;
      double entering_dir = 1.0;
      double best_score = eps_;
      for (int j = 0; j < total_; ++j) {
        const BasisStatus s = status_[static_cast<std::size_t>(j)];
        if (s == BasisStatus::Basic || is_fixed(j)) {
          continue;
        }
        const double cj = phase1 ? 0.0 : cost_[static_cast<std::size_t>(j)];
        const double d = cj - column_dot(j, y_);
        double score = 0.0;
        double dir = 1.0;
        if (s == BasisStatus::AtLower) {
          score = -d;
          dir = 1.0;
        } else if (s == BasisStatus::AtUpper) {
          score = d;
          dir = -1.0;
        } else {  // Free
          score = std::abs(d);
          dir = d < 0.0 ? 1.0 : -1.0;
        }
        if (score > best_score) {
          entering = j;
          entering_dir = dir;
          if (bland) {
            break;  // first eligible index
          }
          best_score = score;
        }
      }
      if (entering < 0) {
        if (phase1) {
          // No improving direction left; feasible iff the residual is noise.
          return infeasibility > kInfeasibleTol ? LpStatus::Infeasible
                                                : LpStatus::Optimal;
        }
        return LpStatus::Optimal;
      }

      ftran_column(entering, w_);
      const RatioOutcome ratio = ratio_test(entering, entering_dir, phase1, bland);
      if (ratio.unbounded) {
        // Phase 1 is bounded below by zero, so an unbounded ray there is
        // numeric trouble; report the limit instead of a wrong certificate.
        return phase1 ? LpStatus::IterationLimit : LpStatus::Unbounded;
      }
      bump_iterations(phase1);
      if (ratio.step < eps_) {
        if (++degenerate_streak > 64) {
          bland = true;
        }
      } else {
        degenerate_streak = 0;
        bland = false;
      }
      if (!apply_primal_step(entering, entering_dir, ratio)) {
        return LpStatus::IterationLimit;  // refactorization failed (singular)
      }
    }
  }

  struct RatioOutcome {
    double step = 0.0;
    int slot = -1;  ///< leaving basis slot; -1 = the entering bound flips
    BasisStatus leave_to = BasisStatus::AtLower;
    bool unbounded = false;
  };

  RatioOutcome ratio_test(int entering, double dir, bool phase1, bool bland) const {
    RatioOutcome out;
    const std::size_t es = static_cast<std::size_t>(entering);
    double best = kInfinity;
    if (std::isfinite(lower_[es]) && std::isfinite(upper_[es])) {
      best = upper_[es] - lower_[es];  // bound-to-bound flip
    }
    double best_pivot_mag = 0.0;
    for (int i = 0; i < m_; ++i) {
      const double alpha = dir * w_[static_cast<std::size_t>(i)];
      if (std::abs(alpha) <= kPivotTol) {
        continue;
      }
      const int bcol = basic_[static_cast<std::size_t>(i)];
      const std::size_t bs = static_cast<std::size_t>(bcol);
      const double x = xB_[static_cast<std::size_t>(i)];
      const double lo = lower_[bs];
      const double hi = upper_[bs];
      // The basic variable moves by -alpha per unit step of the entering.
      double limit = kInfinity;
      BasisStatus to = BasisStatus::AtLower;
      if (phase1 && x < lo - eps_) {
        if (alpha < 0.0) {
          limit = (lo - x) / (-alpha);  // infeasible-below blocks on re-entry
          to = BasisStatus::AtLower;
        }
      } else if (phase1 && x > hi + eps_) {
        if (alpha > 0.0) {
          limit = (x - hi) / alpha;
          to = BasisStatus::AtUpper;
        }
      } else if (alpha > 0.0) {
        if (std::isfinite(lo)) {
          limit = (x - lo) / alpha;
          to = BasisStatus::AtLower;
        }
      } else {
        if (std::isfinite(hi)) {
          limit = (hi - x) / (-alpha);
          to = BasisStatus::AtUpper;
        }
      }
      if (!std::isfinite(limit)) {
        continue;
      }
      if (limit < 0.0) {
        limit = 0.0;  // numeric safety for slightly drifted basics
      }
      bool take = false;
      if (limit < best - eps_) {
        take = true;
      } else if (limit <= best + eps_ && out.slot >= 0) {
        take = bland ? bcol < basic_[static_cast<std::size_t>(out.slot)]
                     : std::abs(alpha) > best_pivot_mag;
      } else if (limit <= best + eps_ && out.slot < 0 && limit <= best) {
        take = true;
      }
      if (take) {
        best = std::min(best, limit);
        out.slot = i;
        out.leave_to = to;
        best_pivot_mag = std::abs(alpha);
      }
    }
    if (!std::isfinite(best)) {
      out.unbounded = true;
      return out;
    }
    out.step = best;
    return out;
  }

  bool apply_primal_step(int entering, double dir, const RatioOutcome& ratio) {
    const std::size_t es = static_cast<std::size_t>(entering);
    for (int i = 0; i < m_; ++i) {
      xB_[static_cast<std::size_t>(i)] -= dir * ratio.step * w_[static_cast<std::size_t>(i)];
    }
    if (ratio.slot < 0) {
      // Bound flip: the entering variable travels to its opposite bound.
      status_[es] = status_[es] == BasisStatus::AtUpper ? BasisStatus::AtLower
                                                        : BasisStatus::AtUpper;
      return true;
    }
    const double entering_start = nonbasic_value(entering);
    const int leaving = basic_[static_cast<std::size_t>(ratio.slot)];
    status_[static_cast<std::size_t>(leaving)] = ratio.leave_to;
    pos_[static_cast<std::size_t>(leaving)] = -1;
    basic_[static_cast<std::size_t>(ratio.slot)] = entering;
    status_[es] = BasisStatus::Basic;
    pos_[es] = ratio.slot;
    xB_[static_cast<std::size_t>(ratio.slot)] = entering_start + dir * ratio.step;
    append_eta(ratio.slot, w_);
    return maybe_refactor();
  }

  // --- dual simplex ---------------------------------------------------------

  /// Verifies the installed statuses are dual feasible (reduced costs agree
  /// with the nonbasic rests). A basis taken from a parent node's optimum
  /// always is — bound changes do not move reduced costs — so a violation
  /// indicates drift and triggers the cold fallback.
  bool dual_feasible() {
    y_.assign(static_cast<std::size_t>(m_), 0.0);
    for (int i = 0; i < m_; ++i) {
      y_[static_cast<std::size_t>(i)] =
          cost_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])];
    }
    btran(y_);
    const double tol = 16.0 * eps_;
    for (int j = 0; j < total_; ++j) {
      const BasisStatus s = status_[static_cast<std::size_t>(j)];
      if (s == BasisStatus::Basic || is_fixed(j)) {
        continue;
      }
      const double d = cost_[static_cast<std::size_t>(j)] - column_dot(j, y_);
      if ((s == BasisStatus::AtLower && d < -tol) ||
          (s == BasisStatus::AtUpper && d > tol) ||
          (s == BasisStatus::Free && std::abs(d) > tol)) {
        return false;
      }
    }
    return true;
  }

  LpSolution dual_solve() {
    LpSolution out;
    // The dual re-solve after one branching bound change needs a handful of
    // pivots; a long dual run indicates degeneracy trouble, and the cold
    // primal fallback is both correct and usually faster at that point.
    const long dual_cap = std::min<long>(max_iterations_, 200 + 2L * total_);
    while (true) {
      if (last_stats_.dual_pivots >= dual_cap) {
        out.status = LpStatus::IterationLimit;
        out.iterations = static_cast<int>(solve_iterations());
        return out;
      }
      // The iterate's objective (basics at xB, nonbasics at their rests)
      // equals the dual objective of this dual-feasible basis, which the
      // dual simplex drives monotonically upward — so crossing the cutoff
      // proves the LP optimum cannot beat it and the caller may prune.
      if (cutoff_ < kInfinity) {
        const double lower_bound = iterate_objective();
        if (lower_bound >= cutoff_) {
          out.status = LpStatus::CutoffReached;
          out.objective = lower_bound;
          out.iterations = static_cast<int>(solve_iterations());
          return out;
        }
      }
      // Leaving variable: the worst primal bound violation.
      int slot = -1;
      double worst = eps_;
      bool above = false;
      for (int i = 0; i < m_; ++i) {
        const std::size_t bs =
            static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)]);
        const double x = xB_[static_cast<std::size_t>(i)];
        if (x < lower_[bs] - eps_ && lower_[bs] - x > worst) {
          worst = lower_[bs] - x;
          slot = i;
          above = false;
        } else if (x > upper_[bs] + eps_ && x - upper_[bs] > worst) {
          worst = x - upper_[bs];
          slot = i;
          above = true;
        }
      }
      if (slot < 0) {
        out.status = LpStatus::Optimal;
        out.iterations = static_cast<int>(solve_iterations());
        finalize(out);
        return out;
      }

      // rho = B^-T e_slot gives the pivot row; alpha_j = rho . A_j.
      rho_.assign(static_cast<std::size_t>(m_), 0.0);
      rho_[static_cast<std::size_t>(slot)] = 1.0;
      btran(rho_);
      y_.assign(static_cast<std::size_t>(m_), 0.0);
      for (int i = 0; i < m_; ++i) {
        y_[static_cast<std::size_t>(i)] =
            cost_[static_cast<std::size_t>(basic_[static_cast<std::size_t>(i)])];
      }
      btran(y_);

      const double e = above ? 1.0 : -1.0;
      // Pass 1: the smallest dual ratio d_j / (e * alpha_j).
      double min_ratio = kInfinity;
      for (int j = 0; j < total_; ++j) {
        const BasisStatus s = status_[static_cast<std::size_t>(j)];
        if (s == BasisStatus::Basic || is_fixed(j)) {
          continue;
        }
        const double sigma = e * column_dot(j, rho_);
        if (!eligible_dual(s, sigma)) {
          continue;
        }
        const double d = cost_[static_cast<std::size_t>(j)] - column_dot(j, y_);
        const double r = std::max(0.0, dual_ratio(s, d, sigma));
        min_ratio = std::min(min_ratio, r);
      }
      if (!std::isfinite(min_ratio)) {
        // No column can absorb the violation: the LP is primal infeasible.
        out.status = LpStatus::Infeasible;
        out.iterations = static_cast<int>(solve_iterations());
        return out;
      }
      // Pass 2: among near-minimal ratios, the largest pivot magnitude.
      int entering = -1;
      double best_mag = 0.0;
      for (int j = 0; j < total_; ++j) {
        const BasisStatus s = status_[static_cast<std::size_t>(j)];
        if (s == BasisStatus::Basic || is_fixed(j)) {
          continue;
        }
        const double alpha = column_dot(j, rho_);
        const double sigma = e * alpha;
        if (!eligible_dual(s, sigma)) {
          continue;
        }
        const double d = cost_[static_cast<std::size_t>(j)] - column_dot(j, y_);
        const double r = std::max(0.0, dual_ratio(s, d, sigma));
        if (r <= min_ratio + eps_ && std::abs(alpha) > best_mag) {
          best_mag = std::abs(alpha);
          entering = j;
        }
      }
      if (entering < 0) {
        out.status = LpStatus::Infeasible;
        out.iterations = static_cast<int>(solve_iterations());
        return out;
      }

      ftran_column(entering, w_);
      const double pivot = w_[static_cast<std::size_t>(slot)];
      if (std::abs(pivot) <= kPivotTol) {
        // The factorized pivot disagrees with the priced one: drift. Let the
        // caller fall back to a cold solve.
        out.status = LpStatus::IterationLimit;
        out.iterations = static_cast<int>(solve_iterations());
        return out;
      }
      const int leaving = basic_[static_cast<std::size_t>(slot)];
      const std::size_t ls = static_cast<std::size_t>(leaving);
      const double target = above ? upper_[ls] : lower_[ls];
      const double delta = (xB_[static_cast<std::size_t>(slot)] - target) / pivot;
      const double entering_value = nonbasic_value(entering) + delta;
      for (int i = 0; i < m_; ++i) {
        xB_[static_cast<std::size_t>(i)] -= delta * w_[static_cast<std::size_t>(i)];
      }
      status_[ls] = above ? BasisStatus::AtUpper : BasisStatus::AtLower;
      pos_[ls] = -1;
      basic_[static_cast<std::size_t>(slot)] = entering;
      status_[static_cast<std::size_t>(entering)] = BasisStatus::Basic;
      pos_[static_cast<std::size_t>(entering)] = slot;
      xB_[static_cast<std::size_t>(slot)] = entering_value;
      append_eta(slot, w_);
      ++last_stats_.dual_pivots;
      if (!maybe_refactor()) {
        out.status = LpStatus::IterationLimit;
        out.iterations = static_cast<int>(solve_iterations());
        return out;
      }
    }
  }

  [[nodiscard]] static bool eligible_dual(BasisStatus s, double sigma) {
    switch (s) {
      case BasisStatus::AtLower: return sigma > kPivotTol;
      case BasisStatus::AtUpper: return sigma < -kPivotTol;
      case BasisStatus::Free: return std::abs(sigma) > kPivotTol;
      case BasisStatus::Basic: break;
    }
    return false;
  }

  [[nodiscard]] static double dual_ratio(BasisStatus s, double d, double sigma) {
    if (s == BasisStatus::Free) {
      return std::abs(d) / std::abs(sigma);
    }
    return d / sigma;
  }

  // --- solve plumbing -------------------------------------------------------

  void begin_solve(bool warm) {
    last_stats_ = SolveStats{};
    if (warm) {
      last_stats_.warm_solves = 1;
    } else {
      last_stats_.cold_solves = 1;
    }
  }

  LpSolution degrade_to_cold() {
    last_stats_.warm_degraded += 1;
    last_stats_.cold_solves += 1;
    reset_to_logical_basis();
    LpSolution out = primal_solve();
    end_solve(out);
    return out;
  }

  void end_solve(LpSolution& out) {
    if (out.status == LpStatus::Optimal) {
      last_basis_.basic = basic_;
      last_basis_.status = status_;
    } else {
      last_basis_ = Basis{};
    }
    total_stats_.accumulate(last_stats_);
    (void)out;
  }

  [[nodiscard]] long solve_iterations() const {
    return last_stats_.primal_pivots + last_stats_.dual_pivots;
  }

  void bump_iterations(bool phase1) {
    (void)phase1;
    ++last_stats_.primal_pivots;
  }

  /// Objective of the current iterate: basics at xB_, nonbasics at their
  /// resting bounds. Identical to what finalize() reports, without
  /// materializing the value vector.
  [[nodiscard]] double iterate_objective() const {
    double objective = 0.0;
    for (Col c = 0; c < n_; ++c) {
      const std::size_t s = static_cast<std::size_t>(c);
      const double value = status_[s] == BasisStatus::Basic
                               ? xB_[static_cast<std::size_t>(pos_[s])]
                               : nonbasic_value(c);
      objective += cost_[s] * value;
    }
    return objective;
  }

  void finalize(LpSolution& out) const {
    out.values.assign(static_cast<std::size_t>(n_), 0.0);
    double objective = 0.0;
    for (Col c = 0; c < n_; ++c) {
      const std::size_t s = static_cast<std::size_t>(c);
      const double value = status_[s] == BasisStatus::Basic
                               ? xB_[static_cast<std::size_t>(pos_[s])]
                               : nonbasic_value(c);
      out.values[s] = value;
      objective += cost_[s] * value;
    }
    out.objective = objective;
  }

  // --- data -----------------------------------------------------------------

  // Immutable model view, shared read-only across cloned workspaces.
  // `shared_` owns it; the references alias into it so the algorithm code
  // reads the matrix under the same names it always did. Logical column
  // n_ + r is the implicit unit column of row r.
  std::shared_ptr<const SharedCscModel> shared_;
  const std::vector<int>& col_start_;
  const std::vector<int>& row_idx_;
  const std::vector<double>& val_;
  const std::vector<double>& cost_;
  const std::vector<double>& b_;
  const int n_;      ///< structural columns
  const int m_;      ///< rows (= logical columns)
  const int total_;  ///< n_ + m_
  const double eps_;
  const SimplexOptions options_;  ///< kept so clones inherit the configuration
  const int refactor_interval_;
  int max_iterations_;

  /// Dual-solve objective cutoff; +infinity disables (see the public doc).
  double cutoff_ = kInfinity;

  // Mutable per-workspace bounds (branch and bound overrides them between
  // solves); start as a copy of the shared model's originals.
  std::vector<double> lower_;
  std::vector<double> upper_;

  // Basis factorization: dense refactorized inverse (column-major) + etas.
  std::vector<double> inv0_;
  std::vector<Eta> etas_;

  // Basis state.
  std::vector<int> basic_;
  std::vector<BasisStatus> status_;
  std::vector<int> pos_;
  std::vector<double> xB_;

  Basis last_basis_;
  SolveStats last_stats_;
  SolveStats total_stats_;

  // Scratch buffers reused across iterations.
  std::vector<double> work_;
  std::vector<double> work_matrix_;
  std::vector<double> work_inverse_;
  std::vector<double> rhs_work_;
  std::vector<double> y_;
  std::vector<double> rho_;
  std::vector<double> w_;
};

RevisedSimplex::RevisedSimplex(const LpModel& model, const SimplexOptions& options)
    : impl_(std::make_unique<Impl>(model, options)) {}
RevisedSimplex::RevisedSimplex(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
RevisedSimplex RevisedSimplex::clone_workspace() const {
  return RevisedSimplex(impl_->clone_workspace());
}
RevisedSimplex::~RevisedSimplex() = default;
RevisedSimplex::RevisedSimplex(RevisedSimplex&&) noexcept = default;
RevisedSimplex& RevisedSimplex::operator=(RevisedSimplex&&) noexcept = default;

void RevisedSimplex::set_bounds(Col c, double lower, double upper) {
  impl_->set_bounds(c, lower, upper);
}

void RevisedSimplex::set_objective_cutoff(double cutoff) {
  impl_->set_objective_cutoff(cutoff);
}

LpSolution RevisedSimplex::solve() { return impl_->solve(); }

LpSolution RevisedSimplex::solve_from(const Basis& start) {
  if (start.empty()) {
    return impl_->solve();
  }
  return impl_->solve_from(start);
}

const Basis& RevisedSimplex::basis() const { return impl_->basis(); }
const SolveStats& RevisedSimplex::last_stats() const { return impl_->last_stats(); }
const SolveStats& RevisedSimplex::total_stats() const { return impl_->total_stats(); }

LpSolution solve_lp_revised(const LpModel& model, const SimplexOptions& options) {
  for (Col c = 0; c < model.variable_count(); ++c) {
    if (model.lower_bound(c) > model.upper_bound(c)) {
      LpSolution solution;
      solution.status = LpStatus::Infeasible;
      return solution;
    }
  }
  RevisedSimplex solver(model, options);
  return solver.solve();
}

}  // namespace cohls::lp
