// Linear-programming model container. The per-layer synthesis ILP of the
// paper (constraints (1)-(21)) is built on this; the MILP layer adds
// integrality marks on top.
#pragma once

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace cohls::lp {

/// Column index into an LpModel.
using Col = int;
/// Row index into an LpModel.
using Row = int;

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class RowSense {
  LessEqual,     ///< a·x <= rhs
  GreaterEqual,  ///< a·x >= rhs
  Equal,         ///< a·x == rhs
};

/// One term of a linear expression: (column, coefficient).
using Term = std::pair<Col, double>;

/// A minimization LP: min c·x subject to row constraints and variable
/// bounds. Rows and columns are append-only; the model is a plain value
/// type that solvers read.
class LpModel {
 public:
  /// Adds a variable with bounds [lower, upper] (either may be infinite)
  /// and the given objective coefficient; returns its column index.
  Col add_variable(double lower, double upper, double objective, std::string name = {});

  /// Adds the constraint `terms · x  sense  rhs`; returns its row index.
  /// Duplicate columns within `terms` are summed.
  Row add_constraint(std::vector<Term> terms, RowSense sense, double rhs,
                     std::string name = {});

  [[nodiscard]] int variable_count() const { return static_cast<int>(lower_.size()); }
  [[nodiscard]] int constraint_count() const { return static_cast<int>(rhs_.size()); }

  [[nodiscard]] double lower_bound(Col c) const { return lower_[check_col(c)]; }
  [[nodiscard]] double upper_bound(Col c) const { return upper_[check_col(c)]; }
  [[nodiscard]] double objective_coefficient(Col c) const { return objective_[check_col(c)]; }
  [[nodiscard]] const std::string& variable_name(Col c) const { return names_[check_col(c)]; }

  /// Tightens the bounds of an existing variable (used by branch & bound).
  void set_bounds(Col c, double lower, double upper);

  [[nodiscard]] const std::vector<Term>& row_terms(Row r) const { return rows_[check_row(r)]; }
  [[nodiscard]] RowSense row_sense(Row r) const { return senses_[check_row(r)]; }
  [[nodiscard]] double row_rhs(Row r) const { return rhs_[check_row(r)]; }
  [[nodiscard]] const std::string& row_name(Row r) const { return row_names_[check_row(r)]; }

  /// Evaluates the objective at a point (size must equal variable_count()).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// True when `x` satisfies every bound and row within tolerance.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x, double tolerance = 1e-6) const;

 private:
  [[nodiscard]] std::size_t check_col(Col c) const {
    COHLS_EXPECT(c >= 0 && c < variable_count(), "column index out of range");
    return static_cast<std::size_t>(c);
  }
  [[nodiscard]] std::size_t check_row(Row r) const {
    COHLS_EXPECT(r >= 0 && r < constraint_count(), "row index out of range");
    return static_cast<std::size_t>(r);
  }

  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<std::vector<Term>> rows_;
  std::vector<RowSense> senses_;
  std::vector<double> rhs_;
  std::vector<std::string> row_names_;
};

}  // namespace cohls::lp
