#include "lp/model.hpp"

#include <algorithm>
#include <cmath>

namespace cohls::lp {

Col LpModel::add_variable(double lower, double upper, double objective, std::string name) {
  COHLS_EXPECT(lower <= upper, "variable lower bound exceeds upper bound");
  COHLS_EXPECT(!std::isnan(lower) && !std::isnan(upper) && !std::isnan(objective),
               "variable data must not be NaN");
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  names_.push_back(std::move(name));
  return variable_count() - 1;
}

Row LpModel::add_constraint(std::vector<Term> terms, RowSense sense, double rhs,
                            std::string name) {
  COHLS_EXPECT(!std::isnan(rhs), "constraint rhs must not be NaN");
  // Merge duplicate columns so solvers can assume one coefficient per column.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.first < b.first; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    COHLS_EXPECT(t.first >= 0 && t.first < variable_count(),
                 "constraint references an unknown column");
    COHLS_EXPECT(!std::isnan(t.second), "constraint coefficient must not be NaN");
    if (!merged.empty() && merged.back().first == t.first) {
      merged.back().second += t.second;
    } else {
      merged.push_back(t);
    }
  }
  rows_.push_back(std::move(merged));
  senses_.push_back(sense);
  rhs_.push_back(rhs);
  row_names_.push_back(std::move(name));
  return constraint_count() - 1;
}

void LpModel::set_bounds(Col c, double lower, double upper) {
  COHLS_EXPECT(lower <= upper, "variable lower bound exceeds upper bound");
  const std::size_t i = check_col(c);
  lower_[i] = lower;
  upper_[i] = upper;
}

double LpModel::objective_value(const std::vector<double>& x) const {
  COHLS_EXPECT(x.size() == lower_.size(), "point arity must match variable count");
  double value = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    value += objective_[i] * x[i];
  }
  return value;
}

bool LpModel::is_feasible(const std::vector<double>& x, double tolerance) const {
  COHLS_EXPECT(x.size() == lower_.size(), "point arity must match variable count");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lower_[i] - tolerance || x[i] > upper_[i] + tolerance) {
      return false;
    }
  }
  for (Row r = 0; r < constraint_count(); ++r) {
    double lhs = 0.0;
    for (const auto& [col, coef] : rows_[static_cast<std::size_t>(r)]) {
      lhs += coef * x[static_cast<std::size_t>(col)];
    }
    const double rhs = rhs_[static_cast<std::size_t>(r)];
    switch (senses_[static_cast<std::size_t>(r)]) {
      case RowSense::LessEqual:
        if (lhs > rhs + tolerance) return false;
        break;
      case RowSense::GreaterEqual:
        if (lhs < rhs - tolerance) return false;
        break;
      case RowSense::Equal:
        if (std::abs(lhs - rhs) > tolerance) return false;
        break;
    }
  }
  return true;
}

}  // namespace cohls::lp
