#include "lp/presolve.hpp"

#include <cmath>

namespace cohls::lp {

namespace {

constexpr double kFixTolerance = 1e-9;
constexpr double kFeasTolerance = 1e-7;

/// Working copy of the model that supports in-place bound tightening and
/// lazy row/column deletion.
struct Working {
  std::vector<double> lower;
  std::vector<double> upper;
  std::vector<double> objective;
  std::vector<std::vector<Term>> rows;
  std::vector<RowSense> senses;
  std::vector<double> rhs;
  std::vector<bool> row_alive;
  std::vector<bool> col_alive;

  explicit Working(const LpModel& m) {
    const int n = m.variable_count();
    lower.reserve(static_cast<std::size_t>(n));
    for (Col c = 0; c < n; ++c) {
      lower.push_back(m.lower_bound(c));
      upper.push_back(m.upper_bound(c));
      objective.push_back(m.objective_coefficient(c));
    }
    for (Row r = 0; r < m.constraint_count(); ++r) {
      rows.push_back(m.row_terms(r));
      senses.push_back(m.row_sense(r));
      rhs.push_back(m.row_rhs(r));
    }
    row_alive.assign(rows.size(), true);
    col_alive.assign(static_cast<std::size_t>(n), true);
  }
};

}  // namespace

std::vector<double> Presolved::restore(const std::vector<double>& reduced) const {
  std::vector<double> full(origins_.size(), 0.0);
  for (std::size_t c = 0; c < origins_.size(); ++c) {
    const ColumnOrigin& origin = origins_[c];
    if (origin.fixed) {
      full[c] = origin.value;
    } else {
      COHLS_EXPECT(origin.reduced_index >= 0 &&
                       static_cast<std::size_t>(origin.reduced_index) < reduced.size(),
                   "reduced solution arity does not match the presolve");
      full[c] = reduced[static_cast<std::size_t>(origin.reduced_index)];
    }
  }
  return full;
}

Presolved presolve(const LpModel& original) {
  Presolved out;
  Working w(original);

  bool changed = true;
  while (changed && !out.infeasible_) {
    changed = false;

    // -- fix columns whose bounds have closed --------------------------------
    for (std::size_t c = 0; c < w.col_alive.size(); ++c) {
      if (!w.col_alive[c]) {
        continue;
      }
      if (w.lower[c] > w.upper[c] + kFixTolerance) {
        out.infeasible_ = true;
        break;
      }
      if (w.upper[c] - w.lower[c] <= kFixTolerance) {
        // Substitute the fixed value into every row.
        const double value = w.lower[c];
        for (std::size_t r = 0; r < w.rows.size(); ++r) {
          if (!w.row_alive[r]) {
            continue;
          }
          auto& terms = w.rows[r];
          for (std::size_t t = 0; t < terms.size();) {
            if (terms[t].first == static_cast<Col>(c)) {
              w.rhs[r] -= terms[t].second * value;
              terms.erase(terms.begin() + static_cast<std::ptrdiff_t>(t));
            } else {
              ++t;
            }
          }
        }
        w.col_alive[c] = false;
        changed = true;
      }
    }
    if (out.infeasible_) {
      break;
    }

    // -- empty and singleton rows ---------------------------------------------
    for (std::size_t r = 0; r < w.rows.size(); ++r) {
      if (!w.row_alive[r]) {
        continue;
      }
      const auto& terms = w.rows[r];
      if (terms.empty()) {
        // 0 (sense) rhs: either trivially true or infeasible.
        const double b = w.rhs[r];
        const bool ok = (w.senses[r] == RowSense::LessEqual && 0.0 <= b + kFeasTolerance) ||
                        (w.senses[r] == RowSense::GreaterEqual && 0.0 >= b - kFeasTolerance) ||
                        (w.senses[r] == RowSense::Equal && std::abs(b) <= kFeasTolerance);
        if (!ok) {
          out.infeasible_ = true;
          break;
        }
        w.row_alive[r] = false;
        changed = true;
        continue;
      }
      if (terms.size() == 1) {
        // a * x (sense) b  ->  bound tightening on x.
        const auto [col, coef] = terms[0];
        const std::size_t c = static_cast<std::size_t>(col);
        if (std::abs(coef) <= kFixTolerance) {
          continue;  // treat as (nearly) empty next round after cleanup
        }
        const double bound = w.rhs[r] / coef;
        RowSense sense = w.senses[r];
        if (coef < 0.0 && sense != RowSense::Equal) {
          sense = sense == RowSense::LessEqual ? RowSense::GreaterEqual
                                               : RowSense::LessEqual;
        }
        switch (sense) {
          case RowSense::LessEqual:
            w.upper[c] = std::min(w.upper[c], bound);
            break;
          case RowSense::GreaterEqual:
            w.lower[c] = std::max(w.lower[c], bound);
            break;
          case RowSense::Equal:
            w.lower[c] = std::max(w.lower[c], bound);
            w.upper[c] = std::min(w.upper[c], bound);
            break;
        }
        if (w.lower[c] > w.upper[c] + kFixTolerance) {
          out.infeasible_ = true;
          break;
        }
        w.row_alive[r] = false;
        changed = true;
      }
    }
  }

  // -- assemble the reduced model -----------------------------------------------
  out.origins_.resize(w.col_alive.size());
  if (out.infeasible_) {
    return out;
  }
  std::vector<int> reduced_index(w.col_alive.size(), -1);
  for (std::size_t c = 0; c < w.col_alive.size(); ++c) {
    if (w.col_alive[c]) {
      reduced_index[c] = out.reduced_.add_variable(w.lower[c], w.upper[c], w.objective[c],
                                                   original.variable_name(static_cast<Col>(c)));
      out.origins_[c] = Presolved::ColumnOrigin{false, 0.0, reduced_index[c]};
    } else {
      out.origins_[c] = Presolved::ColumnOrigin{true, w.lower[c], -1};
      ++out.removed_columns_;
    }
  }
  for (std::size_t r = 0; r < w.rows.size(); ++r) {
    if (!w.row_alive[r]) {
      ++out.removed_rows_;
      continue;
    }
    std::vector<Term> terms;
    terms.reserve(w.rows[r].size());
    for (const auto& [col, coef] : w.rows[r]) {
      terms.emplace_back(reduced_index[static_cast<std::size_t>(col)], coef);
    }
    out.reduced_.add_constraint(std::move(terms), w.senses[r], w.rhs[r],
                                original.row_name(static_cast<Row>(r)));
  }
  return out;
}

LpSolution solve_lp_with_presolve(const LpModel& model, const SimplexOptions& options) {
  const Presolved pre = presolve(model);
  if (pre.infeasible()) {
    LpSolution solution;
    solution.status = LpStatus::Infeasible;
    return solution;
  }
  LpSolution reduced = solve_lp(pre.model(), options);
  if (reduced.status != LpStatus::Optimal) {
    return reduced;
  }
  LpSolution full = reduced;
  full.values = pre.restore(reduced.values);
  full.objective = model.objective_value(full.values);
  return full;
}

}  // namespace cohls::lp
