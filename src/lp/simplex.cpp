#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/revised_simplex.hpp"

namespace cohls::lp {

std::string to_string(LpStatus status) {
  switch (status) {
    case LpStatus::Optimal: return "Optimal";
    case LpStatus::Infeasible: return "Infeasible";
    case LpStatus::Unbounded: return "Unbounded";
    case LpStatus::IterationLimit: return "IterationLimit";
    case LpStatus::CutoffReached: return "CutoffReached";
  }
  return "Unknown";
}

namespace {

// The solver works on a standardized copy of the model:
//   min c·y   s.t.  A y = b,   0 <= y_j <= ub_j   (ub_j may be +inf)
// Structural variables are shifted / mirrored / split so every lower bound
// is 0; each row gets a slack; each row gets an artificial for phase 1.
class Standardized {
 public:
  explicit Standardized(const LpModel& model) : model_(model) {
    build_columns();
    build_rows();
  }

  // --- transformed problem data -------------------------------------------
  int num_cols() const { return static_cast<int>(cost_.size()); }
  int num_rows() const { return static_cast<int>(rhs_.size()); }
  int first_artificial() const { return first_artificial_; }

  const std::vector<std::vector<double>>& matrix() const { return matrix_; }
  const std::vector<double>& rhs() const { return rhs_; }
  const std::vector<double>& cost() const { return cost_; }
  const std::vector<double>& upper() const { return upper_; }

  /// Maps a transformed solution vector back to original variable values.
  std::vector<double> recover(const std::vector<double>& y) const {
    std::vector<double> x(static_cast<std::size_t>(model_.variable_count()), 0.0);
    for (Col c = 0; c < model_.variable_count(); ++c) {
      const auto& m = mapping_[static_cast<std::size_t>(c)];
      const double primary = y[static_cast<std::size_t>(m.primary)];
      double value = m.shift + m.sign * primary;
      if (m.negative_part >= 0) {
        value -= y[static_cast<std::size_t>(m.negative_part)];
      }
      x[static_cast<std::size_t>(c)] = value;
    }
    return x;
  }

 private:
  struct Mapping {
    int primary = -1;        // transformed column
    int negative_part = -1;  // second column for free variables
    double shift = 0.0;      // x = shift + sign * y_primary - y_negative
    double sign = 1.0;
  };

  void build_columns() {
    for (Col c = 0; c < model_.variable_count(); ++c) {
      const double lb = model_.lower_bound(c);
      const double ub = model_.upper_bound(c);
      const double obj = model_.objective_coefficient(c);
      Mapping m;
      if (std::isfinite(lb)) {
        // x = lb + y,  y in [0, ub - lb]
        m.primary = add_col(obj, std::isfinite(ub) ? ub - lb : kInfinity);
        m.shift = lb;
        m.sign = 1.0;
      } else if (std::isfinite(ub)) {
        // x = ub - y,  y in [0, inf)
        m.primary = add_col(-obj, kInfinity);
        m.shift = ub;
        m.sign = -1.0;
      } else {
        // free: x = y+ - y-
        m.primary = add_col(obj, kInfinity);
        m.negative_part = add_col(-obj, kInfinity);
        m.sign = 1.0;
      }
      mapping_.push_back(m);
    }
  }

  int add_col(double cost, double ub) {
    cost_.push_back(cost);
    upper_.push_back(ub);
    return num_cols() - 1;
  }

  void build_rows() {
    const int structural_cols = num_cols();
    // Slack columns, one per row.
    std::vector<int> slack(static_cast<std::size_t>(model_.constraint_count()), -1);
    for (Row r = 0; r < model_.constraint_count(); ++r) {
      if (model_.row_sense(r) != RowSense::Equal) {
        slack[static_cast<std::size_t>(r)] = add_col(0.0, kInfinity);
      }
    }
    first_artificial_ = num_cols();
    for (Row r = 0; r < model_.constraint_count(); ++r) {
      add_col(0.0, kInfinity);  // artificial; phase-1 cost applied separately
    }

    matrix_.assign(static_cast<std::size_t>(model_.constraint_count()),
                   std::vector<double>(static_cast<std::size_t>(num_cols()), 0.0));
    rhs_.assign(static_cast<std::size_t>(model_.constraint_count()), 0.0);

    for (Row r = 0; r < model_.constraint_count(); ++r) {
      auto& row = matrix_[static_cast<std::size_t>(r)];
      double b = model_.row_rhs(r);
      for (const auto& [col, coef] : model_.row_terms(r)) {
        const auto& m = mapping_[static_cast<std::size_t>(col)];
        b -= coef * m.shift;
        row[static_cast<std::size_t>(m.primary)] += coef * m.sign;
        if (m.negative_part >= 0) {
          row[static_cast<std::size_t>(m.negative_part)] -= coef;
        }
      }
      const int s = slack[static_cast<std::size_t>(r)];
      if (s >= 0) {
        row[static_cast<std::size_t>(s)] =
            model_.row_sense(r) == RowSense::LessEqual ? 1.0 : -1.0;
      }
      if (b < 0.0) {
        for (int c = 0; c < structural_cols; ++c) {
          row[static_cast<std::size_t>(c)] = -row[static_cast<std::size_t>(c)];
        }
        if (s >= 0) {
          row[static_cast<std::size_t>(s)] = -row[static_cast<std::size_t>(s)];
        }
        b = -b;
      }
      row[static_cast<std::size_t>(first_artificial_ + r)] = 1.0;
      rhs_[static_cast<std::size_t>(r)] = b;
    }
  }

  const LpModel& model_;
  std::vector<Mapping> mapping_;
  std::vector<double> cost_;
  std::vector<double> upper_;
  std::vector<std::vector<double>> matrix_;
  std::vector<double> rhs_;
  int first_artificial_ = 0;
};

enum class VarStatus : unsigned char { AtLower, AtUpper, Basic };

// Dense-tableau bounded simplex over the standardized problem.
class Tableau {
 public:
  Tableau(const Standardized& problem, const SimplexOptions& options)
      : problem_(problem),
        eps_(options.tolerance),
        m_(problem.num_rows()),
        n_(problem.num_cols()),
        tableau_(problem.matrix()),
        upper_(problem.upper()),
        status_(static_cast<std::size_t>(problem.num_cols()), VarStatus::AtLower),
        basis_(static_cast<std::size_t>(problem.num_rows()), -1),
        basic_value_(problem.rhs()) {
    max_iterations_ = options.max_iterations > 0
                          ? options.max_iterations
                          : 200 * (m_ + n_) + 10000;
    for (int r = 0; r < m_; ++r) {
      const int art = problem.first_artificial() + r;
      basis_[static_cast<std::size_t>(r)] = art;
      status_[static_cast<std::size_t>(art)] = VarStatus::Basic;
    }
  }

  LpStatus run(LpSolution& out) {
    // Phase 1: minimize the sum of artificials.
    std::vector<double> phase1_cost(static_cast<std::size_t>(n_), 0.0);
    for (int c = problem_.first_artificial(); c < n_; ++c) {
      phase1_cost[static_cast<std::size_t>(c)] = 1.0;
    }
    LpStatus st = optimize(phase1_cost);
    if (st != LpStatus::Optimal) {
      // Phase 1 is bounded below by 0; unboundedness means numeric trouble,
      // report the iteration limit instead of a wrong certificate.
      out.iterations = iterations_;
      return st == LpStatus::Unbounded ? LpStatus::IterationLimit : st;
    }
    if (phase1_value() > 1e-6) {
      out.iterations = iterations_;
      return LpStatus::Infeasible;
    }
    seal_artificials();

    // Phase 2: the real objective.
    std::vector<double> phase2_cost(problem_.cost());
    phase2_cost.resize(static_cast<std::size_t>(n_), 0.0);
    st = optimize(phase2_cost);
    out.iterations = iterations_;
    if (st != LpStatus::Optimal) {
      return st;
    }
    finalize(out);
    return LpStatus::Optimal;
  }

 private:
  double variable_value(int c) const {
    switch (status_[static_cast<std::size_t>(c)]) {
      case VarStatus::AtLower: return 0.0;
      case VarStatus::AtUpper: return upper_[static_cast<std::size_t>(c)];
      case VarStatus::Basic:
        for (int r = 0; r < m_; ++r) {
          if (basis_[static_cast<std::size_t>(r)] == c) {
            return basic_value_[static_cast<std::size_t>(r)];
          }
        }
        return 0.0;
    }
    return 0.0;
  }

  double phase1_value() const {
    double total = 0.0;
    for (int r = 0; r < m_; ++r) {
      if (basis_[static_cast<std::size_t>(r)] >= problem_.first_artificial()) {
        total += basic_value_[static_cast<std::size_t>(r)];
      }
    }
    for (int c = problem_.first_artificial(); c < n_; ++c) {
      if (status_[static_cast<std::size_t>(c)] == VarStatus::AtUpper) {
        total += upper_[static_cast<std::size_t>(c)];
      }
    }
    return total;
  }

  // After phase 1, pivot leftover artificials out of the basis where
  // possible and freeze every artificial at zero so phase 2 cannot use them.
  void seal_artificials() {
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b < problem_.first_artificial()) {
        continue;
      }
      int replacement = -1;
      for (int c = 0; c < problem_.first_artificial(); ++c) {
        if (status_[static_cast<std::size_t>(c)] != VarStatus::Basic &&
            std::abs(tableau_[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]) >
                1e-8) {
          replacement = c;
          break;
        }
      }
      if (replacement >= 0) {
        // Degenerate pivot: the artificial is at 0, so values do not move.
        pivot(r, replacement, /*entering_from_upper=*/
              status_[static_cast<std::size_t>(replacement)] == VarStatus::AtUpper,
              /*step=*/0.0);
      }
      // else: redundant row; the artificial stays basic at value 0.
    }
    for (int c = problem_.first_artificial(); c < n_; ++c) {
      if (status_[static_cast<std::size_t>(c)] != VarStatus::Basic) {
        status_[static_cast<std::size_t>(c)] = VarStatus::AtLower;
      }
      upper_[static_cast<std::size_t>(c)] = 0.0;
    }
  }

  LpStatus optimize(const std::vector<double>& cost) {
    compute_reduced_costs(cost);
    int degenerate_streak = 0;
    bool bland = false;
    while (true) {
      if (iterations_ >= max_iterations_) {
        return LpStatus::IterationLimit;
      }
      const int entering = choose_entering(bland);
      if (entering < 0) {
        return LpStatus::Optimal;
      }
      const bool from_upper =
          status_[static_cast<std::size_t>(entering)] == VarStatus::AtUpper;
      int leaving_row = -1;
      bool leaving_to_upper = false;
      double step = ratio_test(entering, from_upper, bland, leaving_row, leaving_to_upper);
      if (step == std::numeric_limits<double>::infinity()) {
        return LpStatus::Unbounded;
      }
      ++iterations_;
      if (step < eps_) {
        if (++degenerate_streak > 64) {
          bland = true;  // anti-cycling
        }
      } else {
        degenerate_streak = 0;
        bland = false;
      }
      if (leaving_row < 0) {
        bound_flip(entering, from_upper);
      } else {
        apply_step_and_pivot(entering, from_upper, step, leaving_row, leaving_to_upper,
                             cost);
      }
    }
  }

  void compute_reduced_costs(const std::vector<double>& cost) {
    reduced_.assign(static_cast<std::size_t>(n_), 0.0);
    for (int c = 0; c < n_; ++c) {
      reduced_[static_cast<std::size_t>(c)] = cost[static_cast<std::size_t>(c)];
    }
    for (int r = 0; r < m_; ++r) {
      const double cb = cost[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])];
      if (cb == 0.0) {
        continue;
      }
      const auto& row = tableau_[static_cast<std::size_t>(r)];
      for (int c = 0; c < n_; ++c) {
        reduced_[static_cast<std::size_t>(c)] -= cb * row[static_cast<std::size_t>(c)];
      }
    }
  }

  int choose_entering(bool bland) const {
    int best = -1;
    double best_score = eps_;
    for (int c = 0; c < n_; ++c) {
      const VarStatus s = status_[static_cast<std::size_t>(c)];
      if (s == VarStatus::Basic) {
        continue;
      }
      if (upper_[static_cast<std::size_t>(c)] <= 0.0 && s == VarStatus::AtLower) {
        continue;  // fixed at zero (sealed artificials, fixed vars)
      }
      const double d = reduced_[static_cast<std::size_t>(c)];
      const double score = s == VarStatus::AtLower ? -d : d;
      if (score > best_score) {
        if (bland) {
          return c;  // first eligible index
        }
        best_score = score;
        best = c;
      }
    }
    return best;
  }

  double ratio_test(int entering, bool from_upper, bool bland, int& leaving_row,
                    bool& leaving_to_upper) const {
    const double direction = from_upper ? -1.0 : 1.0;
    double best = upper_[static_cast<std::size_t>(entering)];  // bound-flip limit
    leaving_row = -1;
    leaving_to_upper = false;
    double best_pivot_mag = 0.0;
    for (int r = 0; r < m_; ++r) {
      const double a =
          direction * tableau_[static_cast<std::size_t>(r)][static_cast<std::size_t>(entering)];
      if (std::abs(a) <= eps_) {
        continue;
      }
      const int b = basis_[static_cast<std::size_t>(r)];
      const double xb = basic_value_[static_cast<std::size_t>(r)];
      double limit;
      bool to_upper;
      if (a > 0.0) {
        limit = xb / a;  // basic variable falls to its lower bound 0
        to_upper = false;
      } else {
        const double ub = upper_[static_cast<std::size_t>(b)];
        if (!std::isfinite(ub)) {
          continue;
        }
        limit = (ub - xb) / (-a);  // basic variable rises to its upper bound
        to_upper = true;
      }
      if (limit < 0.0) {
        limit = 0.0;  // numeric safety for slightly drifted basics
      }
      bool take = false;
      if (limit < best - eps_) {
        take = true;  // strictly tighter blocking bound
      } else if (limit <= best + eps_ && leaving_row >= 0) {
        // Tie between blocking rows: prefer the numerically largest pivot,
        // or the smallest basis index under Bland's rule.
        take = bland ? b < basis_[static_cast<std::size_t>(leaving_row)]
                     : std::abs(a) > best_pivot_mag;
      }
      if (take) {
        best = std::min(best, limit);
        leaving_row = r;
        leaving_to_upper = to_upper;
        best_pivot_mag = std::abs(a);
      }
    }
    return best;
  }

  void bound_flip(int entering, bool from_upper) {
    const double ub = upper_[static_cast<std::size_t>(entering)];
    const double delta = from_upper ? -ub : ub;
    for (int r = 0; r < m_; ++r) {
      basic_value_[static_cast<std::size_t>(r)] -=
          delta * tableau_[static_cast<std::size_t>(r)][static_cast<std::size_t>(entering)];
    }
    status_[static_cast<std::size_t>(entering)] =
        from_upper ? VarStatus::AtLower : VarStatus::AtUpper;
  }

  void apply_step_and_pivot(int entering, bool from_upper, double step, int leaving_row,
                            bool leaving_to_upper, const std::vector<double>& cost) {
    const double direction = from_upper ? -1.0 : 1.0;
    // Move every basic variable by the step.
    for (int r = 0; r < m_; ++r) {
      basic_value_[static_cast<std::size_t>(r)] -=
          direction * step *
          tableau_[static_cast<std::size_t>(r)][static_cast<std::size_t>(entering)];
    }
    const int leaving = basis_[static_cast<std::size_t>(leaving_row)];
    status_[static_cast<std::size_t>(leaving)] =
        leaving_to_upper ? VarStatus::AtUpper : VarStatus::AtLower;
    // Entering variable's new value.
    const double entering_start =
        from_upper ? upper_[static_cast<std::size_t>(entering)] : 0.0;
    basic_value_[static_cast<std::size_t>(leaving_row)] =
        entering_start + direction * step;
    basis_[static_cast<std::size_t>(leaving_row)] = entering;
    status_[static_cast<std::size_t>(entering)] = VarStatus::Basic;
    pivot_eliminate(leaving_row, entering);
    // Keep the reduced-cost row consistent (same elimination).
    const double d = reduced_[static_cast<std::size_t>(entering)];
    if (std::abs(d) > 0.0) {
      const auto& prow = tableau_[static_cast<std::size_t>(leaving_row)];
      for (int c = 0; c < n_; ++c) {
        reduced_[static_cast<std::size_t>(c)] -= d * prow[static_cast<std::size_t>(c)];
      }
    }
    (void)cost;
  }

  // Degenerate pivot used by seal_artificials (step 0, no value motion).
  void pivot(int row, int entering, bool entering_from_upper, double step) {
    (void)step;
    const int leaving = basis_[static_cast<std::size_t>(row)];
    status_[static_cast<std::size_t>(leaving)] = VarStatus::AtLower;
    basis_[static_cast<std::size_t>(row)] = entering;
    const double entering_start =
        entering_from_upper ? upper_[static_cast<std::size_t>(entering)] : 0.0;
    basic_value_[static_cast<std::size_t>(row)] = entering_start;
    status_[static_cast<std::size_t>(entering)] = VarStatus::Basic;
    pivot_eliminate(row, entering);
  }

  void pivot_eliminate(int pivot_row, int pivot_col) {
    auto& prow = tableau_[static_cast<std::size_t>(pivot_row)];
    const double pivot_value = prow[static_cast<std::size_t>(pivot_col)];
    COHLS_ASSERT(std::abs(pivot_value) > 1e-12, "zero pivot element");
    const double inv = 1.0 / pivot_value;
    for (int c = 0; c < n_; ++c) {
      prow[static_cast<std::size_t>(c)] *= inv;
    }
    prow[static_cast<std::size_t>(pivot_col)] = 1.0;
    for (int r = 0; r < m_; ++r) {
      if (r == pivot_row) {
        continue;
      }
      auto& row = tableau_[static_cast<std::size_t>(r)];
      const double factor = row[static_cast<std::size_t>(pivot_col)];
      if (std::abs(factor) <= 1e-13) {
        continue;
      }
      for (int c = 0; c < n_; ++c) {
        row[static_cast<std::size_t>(c)] -= factor * prow[static_cast<std::size_t>(c)];
      }
      row[static_cast<std::size_t>(pivot_col)] = 0.0;
    }
  }

  void finalize(LpSolution& out) const {
    std::vector<double> y(static_cast<std::size_t>(n_), 0.0);
    for (int c = 0; c < n_; ++c) {
      if (status_[static_cast<std::size_t>(c)] == VarStatus::AtUpper) {
        y[static_cast<std::size_t>(c)] = upper_[static_cast<std::size_t>(c)];
      }
    }
    for (int r = 0; r < m_; ++r) {
      y[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])] =
          basic_value_[static_cast<std::size_t>(r)];
    }
    out.values = problem_.recover(y);
  }

  const Standardized& problem_;
  const double eps_;
  const int m_;
  const int n_;
  int max_iterations_;
  int iterations_ = 0;
  std::vector<std::vector<double>> tableau_;
  std::vector<double> upper_;
  std::vector<VarStatus> status_;
  std::vector<int> basis_;
  std::vector<double> basic_value_;
  std::vector<double> reduced_;
};

}  // namespace

LpSolution solve_lp(const LpModel& model, const SimplexOptions& options) {
  if (options.algorithm == SimplexAlgorithm::Revised) {
    return solve_lp_revised(model, options);
  }
  LpSolution solution;
  // Reject trivially inconsistent fixed bounds early.
  for (Col c = 0; c < model.variable_count(); ++c) {
    if (model.lower_bound(c) > model.upper_bound(c)) {
      solution.status = LpStatus::Infeasible;
      return solution;
    }
  }
  Standardized standardized(model);
  Tableau tableau(standardized, options);
  solution.status = tableau.run(solution);
  if (solution.status == LpStatus::Optimal) {
    solution.objective = model.objective_value(solution.values);
  }
  return solution;
}

}  // namespace cohls::lp
