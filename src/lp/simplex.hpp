// Two-phase primal simplex with native variable bounds (nonbasic variables
// rest at either bound; bound flips avoid explicit bound rows). This is the
// LP engine under the branch-and-bound MILP solver that substitutes for the
// paper's Gurobi dependency.
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"

namespace cohls::lp {

enum class LpStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
};

[[nodiscard]] std::string to_string(LpStatus status);

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one value per model variable when solved
  int iterations = 0;
};

struct SimplexOptions {
  /// Hard cap on pivots across both phases; 0 means "derived from size".
  int max_iterations = 0;
  /// Feasibility / pricing tolerance.
  double tolerance = 1e-7;
};

/// Solves `model` (a minimization) with the bounded-variable simplex.
[[nodiscard]] LpSolution solve_lp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace cohls::lp
