// LP solve entry point and options. Two implementations share this
// interface: the sparse revised simplex (lp/revised_simplex.hpp, the
// default) and the original dense-tableau two-phase primal simplex kept in
// lp/simplex.cpp for differential testing. Both support native variable
// bounds (nonbasic variables rest at either bound; bound flips avoid
// explicit bound rows). This is the LP engine under the branch-and-bound
// MILP solver that substitutes for the paper's Gurobi dependency.
#pragma once

#include <string>
#include <vector>

#include "lp/model.hpp"

namespace cohls::lp {

enum class LpStatus {
  Optimal,
  Infeasible,
  Unbounded,
  IterationLimit,
  /// A dual re-solve stopped early because its objective — a monotonically
  /// nondecreasing lower bound on the LP optimum — crossed the caller's
  /// cutoff (RevisedSimplex::set_objective_cutoff). The reported objective
  /// is a valid lower bound; values are not populated. For a branch-and-
  /// bound caller this is an exact prune, not a limit.
  CutoffReached,
};

[[nodiscard]] std::string to_string(LpStatus status);

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0.0;
  std::vector<double> values;  ///< one value per model variable when solved
  int iterations = 0;
};

enum class SimplexAlgorithm {
  /// Sparse revised simplex (lp/revised_simplex.hpp): CSC matrix, eta-file
  /// basis with periodic refactorization, warm-startable dual re-solves.
  Revised,
  /// The original dense-tableau two-phase simplex, kept for differential
  /// testing against the revised implementation.
  Dense,
};

struct SimplexOptions {
  /// Hard cap on pivots across both phases; 0 means "derived from size".
  int max_iterations = 0;
  /// Feasibility / pricing tolerance.
  double tolerance = 1e-7;
  /// Which implementation solve_lp dispatches to.
  SimplexAlgorithm algorithm = SimplexAlgorithm::Revised;
  /// Refactorize the basis after this many eta updates (revised only).
  int refactor_interval = 64;
};

/// Solves `model` (a minimization) with the bounded-variable simplex
/// selected by `options.algorithm`.
[[nodiscard]] LpSolution solve_lp(const LpModel& model, const SimplexOptions& options = {});

}  // namespace cohls::lp
