#include "graph/digraph.hpp"

#include <algorithm>

namespace cohls::graph {

NodeIndex Digraph::add_node() {
  successors_.emplace_back();
  predecessors_.emplace_back();
  return successors_.size() - 1;
}

void Digraph::add_edge(NodeIndex from, NodeIndex to) {
  COHLS_EXPECT(from < node_count() && to < node_count(), "edge endpoint out of range");
  successors_[from].push_back(to);
  predecessors_[to].push_back(from);
  ++edge_count_;
}

bool Digraph::has_edge(NodeIndex from, NodeIndex to) const {
  COHLS_EXPECT(from < node_count() && to < node_count(), "edge endpoint out of range");
  const auto& succ = successors_[from];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

}  // namespace cohls::graph
