#include "graph/max_flow.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace cohls::graph {

FlowNetwork::FlowNetwork(std::size_t node_count)
    : head_(node_count, 0), arcs_(node_count) {}

std::size_t FlowNetwork::add_arc(std::size_t from, std::size_t to, std::int64_t capacity) {
  COHLS_EXPECT(from < node_count() && to < node_count(), "arc endpoint out of range");
  COHLS_EXPECT(capacity >= 0, "arc capacity must be non-negative");
  COHLS_EXPECT(from != to, "self-loop arcs carry no flow");
  const std::size_t slot = arcs_[from].size();
  const std::size_t reverse_slot = arcs_[to].size();
  arcs_[from].push_back(Arc{to, reverse_slot, capacity});
  arcs_[to].push_back(Arc{from, slot, 0});
  handles_.emplace_back(from, slot);
  original_capacity_.push_back(capacity);
  return handles_.size() - 1;
}

FlowNetwork::ArcInfo FlowNetwork::arc(std::size_t handle) const {
  COHLS_EXPECT(handle < handles_.size(), "unknown arc handle");
  const auto [node, slot] = handles_[handle];
  const Arc& fwd = arcs_[node][slot];
  const std::int64_t capacity = original_capacity_[handle];
  return ArcInfo{node, fwd.to, capacity, capacity - fwd.capacity};
}

std::int64_t FlowNetwork::bfs_augment(std::size_t source, std::size_t sink) {
  // parent[n] = (node, slot) of the arc that discovered n.
  constexpr std::size_t kUnset = std::numeric_limits<std::size_t>::max();
  std::vector<std::pair<std::size_t, std::size_t>> parent(node_count(), {kUnset, kUnset});
  parent[source] = {source, kUnset};
  std::deque<std::size_t> queue{source};
  while (!queue.empty() && parent[sink].first == kUnset) {
    const std::size_t n = queue.front();
    queue.pop_front();
    for (std::size_t slot = 0; slot < arcs_[n].size(); ++slot) {
      const Arc& a = arcs_[n][slot];
      if (a.capacity > 0 && parent[a.to].first == kUnset) {
        parent[a.to] = {n, slot};
        queue.push_back(a.to);
      }
    }
  }
  if (parent[sink].first == kUnset) {
    return 0;
  }
  // Find the bottleneck along the path, then push it.
  std::int64_t bottleneck = std::numeric_limits<std::int64_t>::max();
  for (std::size_t n = sink; n != source;) {
    const auto [prev, slot] = parent[n];
    bottleneck = std::min(bottleneck, arcs_[prev][slot].capacity);
    n = prev;
  }
  for (std::size_t n = sink; n != source;) {
    const auto [prev, slot] = parent[n];
    Arc& fwd = arcs_[prev][slot];
    fwd.capacity -= bottleneck;
    arcs_[fwd.to][fwd.reverse].capacity += bottleneck;
    n = prev;
  }
  return bottleneck;
}

FlowNetwork::CutResult FlowNetwork::min_cut(std::size_t source, std::size_t sink) {
  COHLS_EXPECT(source < node_count() && sink < node_count(), "terminal out of range");
  COHLS_EXPECT(source != sink, "source and sink must differ");

  CutResult result;
  while (true) {
    const std::int64_t pushed = bfs_augment(source, sink);
    if (pushed == 0) {
      break;
    }
    result.value += pushed;
  }

  // Source side = nodes reachable in the residual graph.
  result.source_side.assign(node_count(), false);
  result.source_side[source] = true;
  std::vector<std::size_t> stack{source};
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    for (const Arc& a : arcs_[n]) {
      if (a.capacity > 0 && !result.source_side[a.to]) {
        result.source_side[a.to] = true;
        stack.push_back(a.to);
      }
    }
  }

  // Sink side = nodes that reach the sink through positive-residual arcs
  // (backward search over the residual graph).
  result.sink_side.assign(node_count(), false);
  result.sink_side[sink] = true;
  stack.assign(1, sink);
  while (!stack.empty()) {
    const std::size_t n = stack.back();
    stack.pop_back();
    // An arc u->v with residual capacity appears as arcs_[u] entry; to walk
    // backwards we scan every node's residual arcs into n via the reverse
    // entries stored at n.
    for (const Arc& rev : arcs_[n]) {
      // rev is the arc n->rev.to; its reverse (rev.to->n) has residual
      // capacity arcs_[rev.to][rev.reverse].capacity.
      const Arc& fwd = arcs_[rev.to][rev.reverse];
      if (fwd.capacity > 0 && !result.sink_side[rev.to]) {
        result.sink_side[rev.to] = true;
        stack.push_back(rev.to);
      }
    }
  }

  for (std::size_t handle = 0; handle < handles_.size(); ++handle) {
    const ArcInfo info = arc(handle);
    if (result.source_side[info.from] && !result.source_side[info.to] &&
        info.capacity > 0) {
      result.cut_arcs.push_back(handle);
    }
  }
  return result;
}

}  // namespace cohls::graph
