#include "graph/traversal.hpp"

#include <deque>

namespace cohls::graph {

std::optional<std::vector<NodeIndex>> topological_sort(const Digraph& g) {
  std::vector<std::size_t> in_degree(g.node_count(), 0);
  for (NodeIndex n = 0; n < g.node_count(); ++n) {
    in_degree[n] = g.predecessors(n).size();
  }
  std::deque<NodeIndex> ready;
  for (NodeIndex n = 0; n < g.node_count(); ++n) {
    if (in_degree[n] == 0) {
      ready.push_back(n);
    }
  }
  std::vector<NodeIndex> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const NodeIndex n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (const NodeIndex s : g.successors(n)) {
      if (--in_degree[s] == 0) {
        ready.push_back(s);
      }
    }
  }
  if (order.size() != g.node_count()) {
    return std::nullopt;
  }
  return order;
}

bool has_cycle(const Digraph& g) { return !topological_sort(g).has_value(); }

namespace {
enum class Direction { Forward, Backward };

std::vector<bool> reach_mask(const Digraph& g, NodeIndex start, Direction dir) {
  COHLS_EXPECT(start < g.node_count(), "start node out of range");
  std::vector<bool> seen(g.node_count(), false);
  std::vector<NodeIndex> stack{start};
  std::vector<bool> visited(g.node_count(), false);
  visited[start] = true;
  while (!stack.empty()) {
    const NodeIndex n = stack.back();
    stack.pop_back();
    const auto& next = dir == Direction::Forward ? g.successors(n) : g.predecessors(n);
    for (const NodeIndex m : next) {
      if (!visited[m]) {
        visited[m] = true;
        seen[m] = true;
        stack.push_back(m);
      }
    }
  }
  return seen;
}

std::vector<NodeIndex> mask_to_list(const std::vector<bool>& mask) {
  std::vector<NodeIndex> nodes;
  for (NodeIndex n = 0; n < mask.size(); ++n) {
    if (mask[n]) {
      nodes.push_back(n);
    }
  }
  return nodes;
}
}  // namespace

std::vector<bool> descendant_mask(const Digraph& g, NodeIndex start) {
  return reach_mask(g, start, Direction::Forward);
}

std::vector<bool> ancestor_mask(const Digraph& g, NodeIndex start) {
  return reach_mask(g, start, Direction::Backward);
}

std::vector<NodeIndex> descendants(const Digraph& g, NodeIndex start) {
  return mask_to_list(descendant_mask(g, start));
}

std::vector<NodeIndex> ancestors(const Digraph& g, NodeIndex start) {
  return mask_to_list(ancestor_mask(g, start));
}

}  // namespace cohls::graph
