// A small adjacency-list directed graph. Operation dependency graphs, the
// layering algorithm's working graph, and the min-cut flow networks are all
// built on this.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace cohls::graph {

using NodeIndex = std::size_t;

/// Directed graph over nodes 0..node_count()-1 with parallel-edge support.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count)
      : successors_(node_count), predecessors_(node_count) {}

  [[nodiscard]] std::size_t node_count() const { return successors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Appends a fresh node and returns its index.
  NodeIndex add_node();

  /// Adds the directed edge from -> to. Both endpoints must exist.
  void add_edge(NodeIndex from, NodeIndex to);

  [[nodiscard]] const std::vector<NodeIndex>& successors(NodeIndex n) const {
    COHLS_EXPECT(n < node_count(), "node index out of range");
    return successors_[n];
  }
  [[nodiscard]] const std::vector<NodeIndex>& predecessors(NodeIndex n) const {
    COHLS_EXPECT(n < node_count(), "node index out of range");
    return predecessors_[n];
  }

  [[nodiscard]] bool has_edge(NodeIndex from, NodeIndex to) const;

 private:
  std::vector<std::vector<NodeIndex>> successors_;
  std::vector<std::vector<NodeIndex>> predecessors_;
  std::size_t edge_count_ = 0;
};

}  // namespace cohls::graph
