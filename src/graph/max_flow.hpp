// Maximum flow / minimum s-t cut. The paper's resource-based layer
// allocation formulates the cost of evicting an indeterminate operation as a
// minimum cut over its ancestor cone and "implement[s the] min-cut algorithm
// based on the Ford-Fulkerson algorithm". We use the Edmonds–Karp
// realisation of Ford–Fulkerson (BFS augmenting paths), which is exact and
// polynomial.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace cohls::graph {

/// A flow network with integer capacities. Nodes are indexed 0..n-1.
class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const { return head_.size(); }

  /// Adds a directed arc with the given capacity; returns an arc handle that
  /// can be used to query flow after solving. Capacity must be >= 0.
  std::size_t add_arc(std::size_t from, std::size_t to, std::int64_t capacity);

  /// Large capacity used to make an arc effectively uncuttable.
  static constexpr std::int64_t kInfinite = INT64_C(1) << 50;

  struct ArcInfo {
    std::size_t from;
    std::size_t to;
    std::int64_t capacity;
    std::int64_t flow;
  };
  [[nodiscard]] ArcInfo arc(std::size_t handle) const;

  struct CutResult {
    std::int64_t value = 0;             ///< max-flow == min-cut value
    std::vector<bool> source_side;      ///< nodes residual-reachable from s
    /// Nodes that still reach the sink in the residual graph. Its
    /// complement is the *largest* source side among minimum cuts, i.e. the
    /// cut with the fewest sink-side vertices — the layering algorithm's
    /// tie-break ("c2 puts fewer vertices to the sink side than c1").
    std::vector<bool> sink_side;
    std::vector<std::size_t> cut_arcs;  ///< saturated crossing arcs (source-side cut)
  };

  /// Runs Edmonds–Karp from `source` to `sink`; returns the cut. Both
  /// canonical minimum cuts are reported: `source_side` describes the cut
  /// closest to the source, `sink_side` the cut closest to the sink.
  CutResult min_cut(std::size_t source, std::size_t sink);

 private:
  struct Arc {
    std::size_t to;
    std::size_t reverse;   ///< index of the reverse arc in arcs_[to]
    std::int64_t capacity; ///< residual capacity
  };

  std::int64_t bfs_augment(std::size_t source, std::size_t sink);

  std::vector<std::size_t> head_;            // per-node first arc (unused marker)
  std::vector<std::vector<Arc>> arcs_;       // adjacency of residual arcs
  std::vector<std::pair<std::size_t, std::size_t>> handles_;  // (node, slot)
  std::vector<std::int64_t> original_capacity_;
};

}  // namespace cohls::graph
