// Traversal algorithms over Digraph: topological ordering (dependency graphs
// must be acyclic), and ancestor / descendant cones, which the layering
// algorithm uses to evict the descendants of indeterminate operations and to
// build eviction flow networks.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace cohls::graph {

/// Kahn topological sort. Returns std::nullopt when the graph has a cycle.
[[nodiscard]] std::optional<std::vector<NodeIndex>> topological_sort(const Digraph& g);

/// True when the graph contains a directed cycle.
[[nodiscard]] bool has_cycle(const Digraph& g);

/// All nodes reachable from `start` via successor edges, excluding `start`.
[[nodiscard]] std::vector<NodeIndex> descendants(const Digraph& g, NodeIndex start);

/// All nodes that reach `start` via successor edges, excluding `start`.
[[nodiscard]] std::vector<NodeIndex> ancestors(const Digraph& g, NodeIndex start);

/// Membership mask of `descendants` (resp. `ancestors`) for bulk queries:
/// result[n] is true iff n is reachable from (reaches) `start`.
[[nodiscard]] std::vector<bool> descendant_mask(const Digraph& g, NodeIndex start);
[[nodiscard]] std::vector<bool> ancestor_mask(const Digraph& g, NodeIndex start);

}  // namespace cohls::graph
