#include "diag/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cohls::diag {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(), [](const Diagnostic& d) {
    return d.severity == Severity::Error;
  });
}

int count(const std::vector<Diagnostic>& diagnostics, Severity severity) {
  return static_cast<int>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [severity](const Diagnostic& d) { return d.severity == severity; }));
}

void sort_by_location(std::vector<Diagnostic>& diagnostics) {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     // Spanless diagnostics (line 0) sort last.
                     const int la = a.span.known() ? a.span.line : 1 << 30;
                     const int lb = b.span.known() ? b.span.line : 1 << 30;
                     if (la != lb) {
                       return la < lb;
                     }
                     if (a.span.column != b.span.column) {
                       return a.span.column < b.span.column;
                     }
                     if (a.code != b.code) {
                       return a.code < b.code;
                     }
                     return a.message < b.message;
                   });
}

std::optional<Format> parse_format(std::string_view name) {
  if (name == "text") {
    return Format::Text;
  }
  if (name == "json") {
    return Format::Json;
  }
  return std::nullopt;
}

namespace {

/// "file.assay:12:1: " (or "file.assay:12: " without a column; empty for
/// spanless diagnostics with no file).
std::string location_prefix(const Span& span, const std::string& file) {
  std::ostringstream out;
  if (!file.empty()) {
    out << file << ':';
  }
  if (span.known()) {
    out << span.line << ':';
    if (span.column > 0) {
      out << span.column << ':';
    }
  }
  std::string prefix = out.str();
  if (!prefix.empty()) {
    prefix += ' ';
  }
  return prefix;
}

}  // namespace

std::string render_text(const std::vector<Diagnostic>& diagnostics,
                        const std::string& file) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << location_prefix(d.span, file)
        << to_string(d.severity) << ": " << d.message << " [" << d.code << "]\n";
    for (const Note& note : d.notes) {
      out << "  note: " << note.message;
      if (note.span.known()) {
        out << " (";
        if (!file.empty()) {
          out << file << ':';
        }
        out << note.span.line << ')';
      }
      out << '\n';
    }
    if (!d.fixit.empty()) {
      out << "  fix-it: " << d.fixit << '\n';
    }
  }
  return out.str();
}

std::string json_object(const Diagnostic& diagnostic) {
  std::ostringstream out;
  out << "{\"code\": \"" << escape_json(diagnostic.code) << "\", \"severity\": \""
      << to_string(diagnostic.severity) << "\", \"message\": \""
      << escape_json(diagnostic.message) << "\", \"line\": " << diagnostic.span.line
      << ", \"column\": " << diagnostic.span.column;
  out << ", \"notes\": [";
  bool first = true;
  for (const Note& note : diagnostic.notes) {
    out << (first ? "" : ", ") << "{\"message\": \"" << escape_json(note.message)
        << "\", \"line\": " << note.span.line << ", \"column\": " << note.span.column
        << '}';
    first = false;
  }
  out << ']';
  if (!diagnostic.fixit.empty()) {
    out << ", \"fixit\": \"" << escape_json(diagnostic.fixit) << '"';
  }
  out << '}';
  return out.str();
}

std::string render_json(const std::vector<Diagnostic>& diagnostics,
                        const std::string& file) {
  std::ostringstream out;
  out << "{\"file\": \"" << escape_json(file)
      << "\", \"errors\": " << count(diagnostics, Severity::Error)
      << ", \"warnings\": " << count(diagnostics, Severity::Warning)
      << ", \"diagnostics\": [";
  bool first = true;
  for (const Diagnostic& d : diagnostics) {
    out << (first ? "" : ", ") << json_object(d);
    first = false;
  }
  out << "]}";
  return out.str();
}

std::string render(const std::vector<Diagnostic>& diagnostics, Format format,
                   const std::string& file) {
  return format == Format::Json ? render_json(diagnostics, file)
                                : render_text(diagnostics, file);
}

std::string summary_line(const Diagnostic& diagnostic) {
  return diagnostic.code + ": " + diagnostic.message;
}

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cohls::diag
