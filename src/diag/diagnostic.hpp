// Structured diagnostics shared by the pre-solve linter (src/analysis) and
// the post-solve schedule certifier (schedule::certify_result). One
// diagnostic carries a stable machine-readable code ("COHLS-E103"), a
// severity, a human message, an optional source span (line/column into the
// assay text), attached notes, and an optional fix-it hint. Emitters render
// a diagnostic list as clang-style text or as a JSON document, so both the
// CLIs and the batch engine report through one path.
//
// Code ranges are stable API — tools and tests match on them, never on
// message text:
//   COHLS-E1xx  lint errors (assay/spec-level, pre-solve)
//   COHLS-W1xx  lint warnings
//   COHLS-E2xx  certifier errors (schedule-level, post-solve)
//   COHLS-E3xx  recovery errors (degraded-chip re-synthesis, at run time)
//   COHLS-S1xx  source-checker findings (cohls_check over this repo's C++)
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cohls::diag {

enum class Severity {
  Note,
  Warning,
  Error,
};

[[nodiscard]] std::string_view to_string(Severity severity);

/// A 1-based source location in the assay text. line 0 means "no source
/// location" (e.g. certifier diagnostics, which describe a schedule rather
/// than a file); column 0 means "whole line".
struct Span {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool known() const { return line > 0; }

  friend bool operator==(const Span&, const Span&) = default;
};

/// Secondary location attached to a diagnostic ("first defined here").
struct Note {
  std::string message;
  Span span{};
};

struct Diagnostic {
  /// Stable code, e.g. "COHLS-E103". See the catalog in diag::codes.
  std::string code;
  Severity severity = Severity::Error;
  std::string message;
  Span span{};
  std::vector<Note> notes;
  /// Optional actionable hint ("lower capacity to medium").
  std::string fixit;
};

/// The stable code catalog. Every code is documented (severity, meaning,
/// example) in the README rule catalog; additions append, existing codes
/// never change meaning.
namespace codes {

// -- lint errors (E1xx) ------------------------------------------------------
inline constexpr const char* kParseError = "COHLS-E100";
inline constexpr const char* kDuplicateOperationId = "COHLS-E101";
inline constexpr const char* kUndefinedReference = "COHLS-E102";
inline constexpr const char* kDependencyCycle = "COHLS-E103";
inline constexpr const char* kUnbindableOperation = "COHLS-E104";
inline constexpr const char* kNonPositiveDuration = "COHLS-E105";
inline constexpr const char* kNonDenseIds = "COHLS-E106";
inline constexpr const char* kDeviceDemandExceedsBudget = "COHLS-E107";
inline constexpr const char* kNonPositiveThreshold = "COHLS-E108";

// -- lint warnings (W1xx) ----------------------------------------------------
inline constexpr const char* kOverThresholdCluster = "COHLS-W101";
inline constexpr const char* kStoragePressure = "COHLS-W102";
inline constexpr const char* kUnusedAccessory = "COHLS-W103";
inline constexpr const char* kDuplicateParent = "COHLS-W104";

// -- certifier errors (E2xx) -------------------------------------------------
inline constexpr const char* kUnknownOperation = "COHLS-E201";
inline constexpr const char* kDuplicateSchedule = "COHLS-E202";
inline constexpr const char* kMissingOperation = "COHLS-E203";
inline constexpr const char* kNegativeStart = "COHLS-E204";
inline constexpr const char* kWrongDuration = "COHLS-E205";
inline constexpr const char* kUnknownDevice = "COHLS-E206";
inline constexpr const char* kIncompatibleBinding = "COHLS-E207";
inline constexpr const char* kParentLayerOrder = "COHLS-E208";
inline constexpr const char* kDependencyStart = "COHLS-E209";
inline constexpr const char* kTransportStart = "COHLS-E210";
inline constexpr const char* kDeviceOverlap = "COHLS-E211";
inline constexpr const char* kStartAfterIndeterminate = "COHLS-E212";
inline constexpr const char* kIndeterminateSameLayerChild = "COHLS-E213";
inline constexpr const char* kIndeterminateSharedDevice = "COHLS-E214";

// -- recovery errors (E3xx) --------------------------------------------------
// Emitted by core::recover when a mid-run fault cannot be scheduled around.
// A structured E3xx is the contract for "recovery impossible": callers never
// receive a silently wrong continuation schedule.
inline constexpr const char* kRecoveryInfeasible = "COHLS-E300";
inline constexpr const char* kRecoveryUnbindable = "COHLS-E301";
inline constexpr const char* kRecoveryInvalidContinuation = "COHLS-E302";
inline constexpr const char* kRecoveryPinViolation = "COHLS-E303";
inline constexpr const char* kRecoveryNoFailure = "COHLS-E304";
inline constexpr const char* kRecoveryBudgetExhausted = "COHLS-E305";

// -- source checker (S1xx) ---------------------------------------------------
// Emitted by analysis::check_source (the cohls_check repo linter) over this
// codebase's own C++ sources. These enforce concurrency/determinism
// invariants no off-the-shelf tool knows; see the README rule catalog.
inline constexpr const char* kUnorderedIteration = "COHLS-S101";
inline constexpr const char* kForbiddenRandomSource = "COHLS-S102";
inline constexpr const char* kForbiddenWallClock = "COHLS-S103";
inline constexpr const char* kUnguardedMutexMember = "COHLS-S104";
inline constexpr const char* kThrowInWorkerBody = "COHLS-S105";
inline constexpr const char* kClockInRecoveryPath = "COHLS-S106";

}  // namespace codes

[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& diagnostics);
[[nodiscard]] int count(const std::vector<Diagnostic>& diagnostics, Severity severity);

/// Stable report order: by line, then column, then code, then message.
/// Diagnostics without a span sort after located ones.
void sort_by_location(std::vector<Diagnostic>& diagnostics);

enum class Format {
  Text,
  Json,
};

/// Parses "text" / "json"; nullopt on anything else.
[[nodiscard]] std::optional<Format> parse_format(std::string_view name);

/// Clang-style rendering, one block per diagnostic:
///   file.assay:12:1: error: dependency cycle: 2 -> 5 -> 2 [COHLS-E103]
///     note: operation 5 defined here (file.assay:9)
///     fix-it: break the cycle by removing one of the listed parent edges
/// `file` prefixes spans when non-empty; spanless diagnostics keep the file
/// prefix alone ("file.assay: error: ...").
[[nodiscard]] std::string render_text(const std::vector<Diagnostic>& diagnostics,
                                      const std::string& file = "");

/// One JSON object per diagnostic (used by render_json and by the batch
/// engine's per-job diagnostics arrays):
///   {"code": "COHLS-E103", "severity": "error", "message": "...",
///    "line": 12, "column": 1, "notes": [...], "fixit": "..."}
[[nodiscard]] std::string json_object(const Diagnostic& diagnostic);

/// Whole-document JSON rendering:
///   {"file": "...", "errors": 2, "warnings": 1, "diagnostics": [...]}
[[nodiscard]] std::string render_json(const std::vector<Diagnostic>& diagnostics,
                                      const std::string& file = "");

[[nodiscard]] std::string render(const std::vector<Diagnostic>& diagnostics,
                                 Format format, const std::string& file = "");

/// One-line summary "COHLS-E103: dependency cycle: 2 -> 5 -> 2" for log
/// lines and BatchResult::detail.
[[nodiscard]] std::string summary_line(const Diagnostic& diagnostic);

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
[[nodiscard]] std::string escape_json(std::string_view text);

}  // namespace cohls::diag
