#include "chip/resources.hpp"

#include <cmath>
#include <set>

#include "util/check.hpp"

namespace cohls::chip {

namespace {
int ceil_log2(int n) {
  int bits = 0;
  int value = 1;
  while (value < n) {
    value *= 2;
    ++bits;
  }
  return bits;
}
}  // namespace

ChipResources estimate_resources(const schedule::SynthesisResult& result,
                                 const model::Assay& assay, const ValveModel& valves) {
  ChipResources out;
  std::set<DeviceId> used;
  for (const auto& layer : result.layers) {
    for (const auto& item : layer.items) {
      used.insert(item.device);
    }
  }

  int heater_ports = 0;
  int optical_ports = 0;
  for (const DeviceId id : used) {
    const model::DeviceConfig& config = result.devices.device(id).config;
    out.flow_valves += config.container == model::ContainerKind::Ring
                           ? valves.valves_per_ring
                           : valves.valves_per_chamber;
    for (const model::AccessoryId acc : config.accessories.to_list()) {
      switch (acc) {
        case model::BuiltinAccessory::kPump:
          out.flow_valves += valves.valves_per_pump;
          break;
        case model::BuiltinAccessory::kSieveValve:
          out.flow_valves += valves.valves_per_sieve;
          break;
        case model::BuiltinAccessory::kCellTrap:
          out.flow_valves += valves.valves_per_cell_trap;
          break;
        case model::BuiltinAccessory::kHeatingPad:
          heater_ports += valves.ports_per_heating_pad;
          break;
        case model::BuiltinAccessory::kOpticalSystem:
          optical_ports += valves.ports_per_optical;
          break;
        default:
          out.flow_valves += valves.valves_per_custom_accessory;
          break;
      }
    }
  }

  out.channels = result.path_count(assay);
  out.flow_valves += out.channels * valves.valves_per_path;

  out.control_ports_direct = out.flow_valves + heater_ports + optical_ports;
  out.control_ports_multiplexed =
      (out.flow_valves > 0 ? 2 * ceil_log2(out.flow_valves) : 0) + heater_ports +
      optical_ports;
  // A multiplexer never needs more lines than direct drive.
  out.control_ports_multiplexed =
      std::min(out.control_ports_multiplexed, out.control_ports_direct);
  return out;
}

}  // namespace cohls::chip
