// Chip-level resource estimation. The paper's processing-cost constants
// abstract over what a fabricated chip actually needs: valves on the flow
// layer, control ports driving them, and flow channels. This module makes
// those concrete with the standard continuous-flow budget — two isolation
// valves per chamber, a three-valve peristaltic pump per rotary mixer [8],
// one sieve valve per column stage, two gate valves per inter-device
// channel — and the classic multiplexer bound (2·ceil(log2 N) control lines
// can address N flow valves).
#pragma once

#include "model/assay.hpp"
#include "schedule/types.hpp"

namespace cohls::chip {

/// Per-component valve / port contributions; override to match a process.
struct ValveModel {
  int valves_per_chamber = 2;  ///< the two separating valves
  int valves_per_ring = 3;     ///< ring closure + bus taps
  int valves_per_pump = 3;     ///< peristaltic pump [8]
  int valves_per_sieve = 1;
  int valves_per_cell_trap = 0;  ///< passive PDMS structure
  int valves_per_path = 2;       ///< a gate valve at each channel end
  /// Valves assumed for accessory kinds beyond the built-ins.
  int valves_per_custom_accessory = 1;
  int ports_per_heating_pad = 1;   ///< heater supply line
  int ports_per_optical = 1;       ///< detector readout line
};

struct ChipResources {
  int flow_valves = 0;
  int channels = 0;  ///< inter-device transportation channels
  /// One dedicated pressure source per flow valve, plus heater/optical lines.
  int control_ports_direct = 0;
  /// Multiplexed control: 2*ceil(log2(valves)) shared lines, plus
  /// heater/optical lines (they cannot share a binary multiplexer).
  int control_ports_multiplexed = 0;
};

/// Estimates the fabricated-chip budget of a synthesis result (used devices
/// and the transportation channels among them).
[[nodiscard]] ChipResources estimate_resources(const schedule::SynthesisResult& result,
                                               const model::Assay& assay,
                                               const ValveModel& valves = {});

}  // namespace cohls::chip
