#include "layout/placement.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace cohls::layout {

std::map<schedule::DevicePath, int> path_usage(const schedule::SynthesisResult& result,
                                               const model::Assay& assay) {
  std::map<schedule::DevicePath, int> usage;
  const auto binding = result.binding();
  for (const auto& [op, device] : binding) {
    for (const OperationId child : assay.children(op)) {
      const auto it = binding.find(child);
      if (it != binding.end() && it->second != device) {
        ++usage[schedule::make_path(device, it->second)];
      }
    }
  }
  return usage;
}

Placement::Placement(std::vector<DeviceId> devices, std::vector<GridPosition> positions,
                     int grid_width)
    : devices_(std::move(devices)), positions_(std::move(positions)),
      grid_width_(grid_width) {
  COHLS_EXPECT(devices_.size() == positions_.size(),
               "every device needs exactly one position");
  COHLS_EXPECT(grid_width_ >= 1, "grid must have positive width");
  std::set<std::pair<int, int>> taken;
  for (const GridPosition p : positions_) {
    COHLS_EXPECT(p.x >= 0 && p.x < grid_width_ && p.y >= 0 && p.y < grid_width_,
                 "position outside the grid");
    COHLS_EXPECT(taken.insert({p.x, p.y}).second, "two devices share a grid cell");
  }
}

GridPosition Placement::position(DeviceId device) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i] == device) {
      return positions_[i];
    }
  }
  throw PreconditionError("device is not placed");
}

int Placement::distance(DeviceId a, DeviceId b) const {
  const GridPosition pa = position(a);
  const GridPosition pb = position(b);
  return std::abs(pa.x - pb.x) + std::abs(pa.y - pb.y);
}

double Placement::wirelength(const std::map<schedule::DevicePath, int>& usage) const {
  double total = 0.0;
  for (const auto& [path, count] : usage) {
    total += static_cast<double>(count) * distance(path.first, path.second);
  }
  return total;
}

std::string Placement::to_ascii() const {
  std::vector<std::string> grid(static_cast<std::size_t>(grid_width_),
                                std::string(static_cast<std::size_t>(grid_width_), '.'));
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const int id = devices_[i].value();
    const char mark = id < 10 ? static_cast<char>('0' + id)
                              : (id < 36 ? static_cast<char>('a' + id - 10) : '*');
    grid[static_cast<std::size_t>(positions_[i].y)][static_cast<std::size_t>(
        positions_[i].x)] = mark;
  }
  std::ostringstream out;
  for (const std::string& row : grid) {
    out << row << '\n';
  }
  return out.str();
}

Placement place_devices(const schedule::SynthesisResult& result,
                        const model::Assay& assay, const PlacementOptions& options) {
  COHLS_EXPECT(options.sweeps >= 0, "sweeps must be non-negative");
  COHLS_EXPECT(options.cooling > 0.0 && options.cooling < 1.0,
               "cooling factor must be in (0, 1)");

  std::set<DeviceId> used;
  for (const auto& layer : result.layers) {
    for (const auto& item : layer.items) {
      used.insert(item.device);
    }
  }
  std::vector<DeviceId> devices(used.begin(), used.end());
  COHLS_EXPECT(!devices.empty(), "cannot place an empty result");

  int width = options.grid_width;
  if (width == 0) {
    width = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(devices.size()))));
  }
  COHLS_EXPECT(static_cast<std::size_t>(width) * static_cast<std::size_t>(width) >=
                   devices.size(),
               "grid too small for the devices");

  const auto usage = path_usage(result, assay);
  // Dense index per device for the annealer's working arrays.
  std::map<DeviceId, std::size_t> index;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    index[devices[i]] = i;
  }
  struct Edge {
    std::size_t a;
    std::size_t b;
    int weight;
  };
  std::vector<Edge> edges;
  for (const auto& [path, count] : usage) {
    // Paths can touch devices absent from `devices` only if the result is
    // inconsistent; Placement's invariants would catch that later anyway.
    edges.push_back(Edge{index.at(path.first), index.at(path.second), count});
  }

  // cell_of[device index] = linear grid cell; device_at[cell] = device or npos.
  const std::size_t cells = static_cast<std::size_t>(width) * static_cast<std::size_t>(width);
  constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);
  std::vector<std::size_t> cell_of(devices.size());
  std::vector<std::size_t> device_at(cells, kEmpty);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    cell_of[i] = i;
    device_at[i] = i;
  }

  const auto cell_distance = [width](std::size_t a, std::size_t b) {
    const int ax = static_cast<int>(a) % width;
    const int ay = static_cast<int>(a) / width;
    const int bx = static_cast<int>(b) % width;
    const int by = static_cast<int>(b) / width;
    return std::abs(ax - bx) + std::abs(ay - by);
  };
  const auto cost = [&]() {
    double total = 0.0;
    for (const Edge& e : edges) {
      total += static_cast<double>(e.weight) * cell_distance(cell_of[e.a], cell_of[e.b]);
    }
    return total;
  };

  Rng rng{options.seed};
  double current = cost();
  double temperature = options.initial_temperature;
  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    for (std::size_t move = 0; move < devices.size(); ++move) {
      const std::size_t d = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(devices.size()) - 1));
      const std::size_t target = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(cells) - 1));
      const std::size_t source = cell_of[d];
      if (target == source) {
        continue;
      }
      const std::size_t other = device_at[target];
      // Apply the move (swap or relocation), re-evaluate, maybe revert.
      device_at[source] = other;
      device_at[target] = d;
      cell_of[d] = target;
      if (other != kEmpty) {
        cell_of[other] = source;
      }
      const double changed = cost();
      const double delta = changed - current;
      const bool accept =
          delta <= 0.0 || rng.uniform_double() < std::exp(-delta / std::max(temperature, 1e-9));
      if (accept) {
        current = changed;
      } else {
        device_at[target] = other;
        device_at[source] = d;
        cell_of[d] = source;
        if (other != kEmpty) {
          cell_of[other] = target;
        }
      }
    }
    temperature *= options.cooling;
  }

  std::vector<GridPosition> positions(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    positions[i] = GridPosition{static_cast<int>(cell_of[i]) % width,
                                static_cast<int>(cell_of[i]) / width};
  }
  return Placement(std::move(devices), std::move(positions), width);
}

}  // namespace cohls::layout
