// Potential-chip-layout sketching (contribution III). The paper observes
// that transportation time depends on channel lengths, which depend on the
// physical layout — and that more-used paths should be laid out shorter.
// This module makes that concrete: devices are placed on a grid by
// simulated annealing minimizing usage-weighted Manhattan wirelength, so
// frequently-communicating devices end up adjacent. The resulting distances
// feed `transport_from_layout`, a physically-grounded alternative to the
// rank-based arithmetic-progression refinement.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/assay.hpp"
#include "schedule/types.hpp"
#include "util/rng.hpp"

namespace cohls::layout {

struct GridPosition {
  int x = 0;
  int y = 0;

  friend bool operator==(GridPosition, GridPosition) = default;
};

struct PlacementOptions {
  /// Grid side length; 0 chooses the smallest square that fits the devices.
  int grid_width = 0;
  /// Simulated-annealing sweeps (each tries one move per device).
  int sweeps = 200;
  double initial_temperature = 8.0;
  double cooling = 0.95;
  std::uint64_t seed = 1;
};

/// How often each inter-device path carries a transfer in a result.
[[nodiscard]] std::map<schedule::DevicePath, int> path_usage(
    const schedule::SynthesisResult& result, const model::Assay& assay);

/// A device-to-grid-cell assignment.
class Placement {
 public:
  Placement(std::vector<DeviceId> devices, std::vector<GridPosition> positions,
            int grid_width);

  [[nodiscard]] int grid_width() const { return grid_width_; }
  [[nodiscard]] const std::vector<DeviceId>& devices() const { return devices_; }
  [[nodiscard]] GridPosition position(DeviceId device) const;

  /// Manhattan distance between two placed devices, in grid cells.
  [[nodiscard]] int distance(DeviceId a, DeviceId b) const;

  /// Usage-weighted total wirelength (the annealer's objective).
  [[nodiscard]] double wirelength(
      const std::map<schedule::DevicePath, int>& usage) const;

  /// ASCII rendering of the grid ('.' = empty, hex digit = device id).
  [[nodiscard]] std::string to_ascii() const;

 private:
  std::vector<DeviceId> devices_;
  std::vector<GridPosition> positions_;  // parallel to devices_
  int grid_width_;
};

/// Places the result's used devices by simulated annealing (deterministic
/// for a fixed seed).
[[nodiscard]] Placement place_devices(const schedule::SynthesisResult& result,
                                      const model::Assay& assay,
                                      const PlacementOptions& options = {});

}  // namespace cohls::layout
