#include "layout/transport_from_layout.hpp"

#include "util/check.hpp"

namespace cohls::layout {

schedule::TransportPlan transport_from_layout(const Placement& placement,
                                              const schedule::SynthesisResult& result,
                                              const model::Assay& assay,
                                              const LayoutTransportOptions& options) {
  COHLS_EXPECT(options.minimum >= Minutes{0} && options.per_cell >= Minutes{0} &&
                   options.fallback >= Minutes{0},
               "layout transport times must be non-negative");
  schedule::TransportPlan plan(options.fallback);
  const auto binding = result.binding();
  for (const model::Operation& op : assay.operations()) {
    const auto parent_device = binding.find(op.id());
    if (parent_device == binding.end()) {
      continue;
    }
    for (const OperationId child : assay.children(op.id())) {
      const auto child_device = binding.find(child);
      if (child_device == binding.end()) {
        continue;
      }
      if (parent_device->second == child_device->second) {
        plan.set_edge_time(op.id(), child, Minutes{0});
        continue;
      }
      const int distance = placement.distance(parent_device->second, child_device->second);
      plan.set_edge_time(op.id(), child,
                         options.minimum + (distance - 1) * options.per_cell);
    }
  }
  return plan;
}

}  // namespace cohls::layout
