// Layout-driven transportation estimation: instead of mapping path-usage
// ranks onto an arithmetic progression (Sec. 4.1), derive each edge's
// transfer time from the placed channel length — `minimum` plus
// `per_cell` minutes per grid cell beyond adjacency. Same-device transfers
// are zero, like the paper's refinement.
#pragma once

#include "layout/placement.hpp"
#include "schedule/transport_plan.hpp"

namespace cohls::layout {

struct LayoutTransportOptions {
  /// Base transfer time of an adjacent (distance-1) device pair.
  Minutes minimum{1};
  /// Additional minutes per extra grid cell of channel length.
  Minutes per_cell{1};
  /// Fallback for edges whose endpoints are not in the placement.
  Minutes fallback{3};
};

[[nodiscard]] schedule::TransportPlan transport_from_layout(
    const Placement& placement, const schedule::SynthesisResult& result,
    const model::Assay& assay, const LayoutTransportOptions& options = {});

}  // namespace cohls::layout
