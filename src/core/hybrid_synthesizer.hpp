// One full synthesis pass over a layered assay (the inner loop of
// Sec. 3.2). Layers are synthesized in order; the device set D grows
// monotonically (D_i = D_{i-1} ∪ D'_i); devices known to be integrated by
// later layers (from the previous re-synthesis iteration) are offered as
// zero-cost hints.
#pragma once

#include <functional>

#include "core/layer_synthesizer.hpp"
#include "core/layering.hpp"
#include "core/options.hpp"
#include "schedule/types.hpp"

namespace cohls::core {

/// A device the previous iteration's pass integrated, usable as a hint.
struct KnownDevice {
  model::DeviceConfig config;
  /// Layer (index into the plan) whose synthesis created it.
  int created_in_layer = 0;
};

/// Customization hooks shared with the conventional baseline and the
/// degraded-mode recovery re-synthesizer.
struct PassPolicy {
  /// Binding predicate override (empty = component-oriented rule).
  std::function<bool(const model::Operation&, const model::DeviceConfig&)> binds;
  /// New-device configuration override (empty = cheapest compatible).
  std::function<model::DeviceConfig(const model::Operation&)> new_config;
  /// Fixed-time-slot quantization (0 = continuous start times).
  Minutes slot_size{0};
  /// Devices already on the chip before the pass (recovery: the surviving
  /// inventory of a mid-run chip). They are instantiated, in order, into
  /// every pass's fresh inventory with an invalid creation layer (sunk
  /// cost, like user-provided hardware); their DeviceIds are their indexes
  /// here.
  std::vector<model::DeviceConfig> initial_devices;
  /// Operations that must bind to a specific initial device (recovery pins
  /// in-flight operations to the device already running them).
  std::map<OperationId, DeviceId> pinned;
  /// When false, no layer may instantiate devices beyond initial_devices —
  /// a fabricated chip cannot grow at run time.
  bool allow_new_devices = true;
};

/// Runs one pass. `known_devices` may be empty (first iteration). In later
/// iterations, layer L_i sees the configs created by layers *after* i as
/// hints (D \ D'_i inheritance).
[[nodiscard]] schedule::SynthesisResult run_pass(
    const model::Assay& assay, const LayerPlan& plan,
    const schedule::TransportPlan& transport, const SynthesisOptions& options,
    const std::vector<KnownDevice>& known_devices = {}, const PassPolicy& policy = {});

}  // namespace cohls::core
