#include "core/recovery.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

#include "model/compatibility.hpp"
#include "schedule/validate.hpp"
#include "util/check.hpp"

namespace cohls::core {

namespace {

diag::Diagnostic make_diagnostic(const char* code, std::string message,
                                 std::string fixit = "") {
  diag::Diagnostic diagnostic;
  diagnostic.code = code;
  diagnostic.severity = diag::Severity::Error;
  diagnostic.message = std::move(message);
  diagnostic.fixit = std::move(fixit);
  return diagnostic;
}

}  // namespace

ResidualAssay build_residual(const model::Assay& assay,
                             const schedule::SynthesisResult& original,
                             const sim::RunTrace& trace) {
  ResidualAssay residual;
  residual.assay = model::Assay{assay.name() + " (recovery)", assay.registry()};

  // The surviving chip: every original device except the one that failed.
  const DeviceId failed =
      trace.failure && trace.failure->outcome == sim::RunOutcome::DeviceFailed
          ? trace.failure->device
          : DeviceId{};
  for (const model::Device& device : original.devices.devices()) {
    if (device.id == failed) {
      continue;
    }
    residual.device_map.emplace(
        device.id, DeviceId{static_cast<std::int32_t>(residual.surviving_devices.size())});
    residual.surviving_devices.push_back(device.config);
  }

  const std::set<OperationId> completed(trace.completed.begin(), trace.completed.end());
  std::map<OperationId, const sim::InFlightOperation*> in_flight;
  for (const sim::InFlightOperation& item : trace.in_flight) {
    in_flight.emplace(item.op, &item);
  }

  // Outstanding operations in ascending original-id order — parents were
  // added before children in the original, so the same holds here.
  for (const model::Operation& op : assay.operations()) {
    if (completed.count(op.id()) > 0) {
      continue;
    }
    model::OperationSpec spec;
    spec.name = op.name();
    spec.container = op.container();
    spec.capacity = op.capacity();
    spec.accessories = op.accessories();
    spec.duration = op.duration();
    spec.indeterminate = op.indeterminate();
    for (const OperationId parent : op.parents()) {
      if (completed.count(parent) > 0) {
        continue;  // the parent's product is already on the chip
      }
      spec.parents.push_back(residual.from_original.at(parent));
    }
    const auto running = in_flight.find(op.id());
    if (running != in_flight.end()) {
      // Elapsed-time credit: only the remaining realized time is re-planned
      // (for an indeterminate operation this is the remaining minimum — the
      // cyberphysical check still decides completion).
      spec.duration = running->second->remaining;
    }
    const OperationId residual_id = residual.assay.add_operation(std::move(spec));
    residual.to_original.emplace(residual_id, op.id());
    residual.from_original.emplace(op.id(), residual_id);
    if (running != in_flight.end()) {
      const auto survivor = residual.device_map.find(running->second->device);
      COHLS_EXPECT(survivor != residual.device_map.end(),
                   "in-flight operation bound to a failed device");
      residual.pinned.emplace(residual_id, survivor->second);
    }
  }
  return residual;
}

RecoveryOutcome recover(const model::Assay& assay,
                        const schedule::SynthesisResult& original,
                        const sim::RunTrace& trace, const SynthesisOptions& options) {
  RecoveryOutcome outcome;
  if (!trace.failure.has_value()) {
    outcome.diagnostics.push_back(make_diagnostic(
        diag::codes::kRecoveryNoFailure,
        "run trace reports no failure: there is nothing to recover",
        "call recover() only when simulate_run returns a broken trace"));
    return outcome;
  }

  outcome.residual = build_residual(assay, original, trace);
  const ResidualAssay& residual = outcome.residual;

  // Pre-flight: on a fabricated chip no new device can appear, so every
  // outstanding operation must fit some surviving device (E301) and every
  // pin target must still be able to run its operation (E303).
  for (const model::Operation& op : residual.assay.operations()) {
    const OperationId original_id = residual.to_original.at(op.id());
    const auto pin = residual.pinned.find(op.id());
    if (pin != residual.pinned.end()) {
      if (!model::is_compatible(op, residual.surviving_devices[pin->second.index()])) {
        std::ostringstream message;
        message << "in-flight operation " << original_id << " (" << op.name()
                << ") is pinned to surviving device " << pin->second
                << ", which cannot execute it";
        outcome.diagnostics.push_back(
            make_diagnostic(diag::codes::kRecoveryPinViolation, message.str()));
      }
      continue;
    }
    const bool bindable =
        std::any_of(residual.surviving_devices.begin(), residual.surviving_devices.end(),
                    [&op](const model::DeviceConfig& config) {
                      return model::is_compatible(op, config);
                    });
    if (!bindable) {
      std::ostringstream message;
      message << "operation " << original_id << " (" << op.name()
              << ") cannot execute on any surviving device";
      outcome.diagnostics.push_back(make_diagnostic(
          diag::codes::kRecoveryUnbindable, message.str(),
          "the failed device was the only hardware able to run this operation"));
    }
  }
  if (!outcome.diagnostics.empty()) {
    return outcome;
  }

  // Re-enter the normal flow on the residual assay, constrained to the
  // surviving hardware.
  SynthesisOptions recovery_options = options;
  recovery_options.max_devices =
      std::max(1, static_cast<int>(residual.surviving_devices.size()));
  PassPolicy policy;
  policy.initial_devices = residual.surviving_devices;
  policy.pinned = residual.pinned;
  policy.allow_new_devices = false;

  try {
    outcome.continuation = synthesize(residual.assay, recovery_options, policy);
  } catch (const CancelledError&) {
    throw;
  } catch (const InfeasibleError& error) {
    outcome.diagnostics.push_back(make_diagnostic(
        diag::codes::kRecoveryInfeasible,
        std::string{"no continuation schedule exists on the surviving devices: "} +
            error.what()));
    return outcome;
  }

  // The continuation is only trusted certified: pins honoured, then the
  // full E2xx certifier.
  const std::map<OperationId, DeviceId> binding = outcome.continuation.result.binding();
  for (const auto& [op, device] : residual.pinned) {
    const auto bound = binding.find(op);
    if (bound == binding.end() || bound->second != device) {
      std::ostringstream message;
      message << "in-flight operation " << residual.to_original.at(op)
              << " was re-bound away from its pinned device " << device;
      outcome.diagnostics.push_back(
          make_diagnostic(diag::codes::kRecoveryPinViolation, message.str()));
    }
  }
  const std::vector<diag::Diagnostic> certification = schedule::certify_result(
      outcome.continuation.result, residual.assay, outcome.continuation.transport);
  if (diag::has_errors(certification)) {
    diag::Diagnostic failure = make_diagnostic(
        diag::codes::kRecoveryInvalidContinuation,
        "continuation schedule failed certification (" +
            std::to_string(diag::count(certification, diag::Severity::Error)) +
            " errors)");
    for (const diag::Diagnostic& evidence : certification) {
      failure.notes.push_back(diag::Note{diag::summary_line(evidence)});
    }
    outcome.diagnostics.push_back(std::move(failure));
  }
  outcome.recovered = outcome.diagnostics.empty();
  return outcome;
}

}  // namespace cohls::core
