#include "core/recovery.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "model/compatibility.hpp"
#include "schedule/validate.hpp"
#include "util/check.hpp"

namespace cohls::core {

namespace {

diag::Diagnostic make_diagnostic(const char* code, std::string message,
                                 std::string fixit = "") {
  diag::Diagnostic diagnostic;
  diagnostic.code = code;
  diagnostic.severity = diag::Severity::Error;
  diagnostic.message = std::move(message);
  diagnostic.fixit = std::move(fixit);
  return diagnostic;
}

/// One fault-chain line for E3xx notes, in the fault-plan text idiom.
std::string fault_line(const sim::FaultEvent& event) {
  std::ostringstream line;
  switch (event.kind) {
    case sim::FaultKind::DeviceFailure:
      line << "device-fail " << event.device << " at " << event.at;
      break;
    case sim::FaultKind::AttemptExhaustion:
      line << "exhaust " << event.op << " at " << event.at;
      break;
    case sim::FaultKind::Degradation:
      line << "degrade " << event.device << " by " << event.factor << " from "
           << event.at;
      break;
    case sim::FaultKind::TransportDelay:
      line << "transport-delay " << event.delay << " from " << event.at;
      break;
  }
  return line.str();
}

void attach_fault_chain(std::vector<diag::Diagnostic>& diagnostics,
                        const std::vector<sim::FaultEvent>& chain) {
  if (diagnostics.empty()) {
    return;
  }
  for (const sim::FaultEvent& event : chain) {
    diagnostics.front().notes.push_back(diag::Note{"fault chain: " + fault_line(event)});
  }
}

}  // namespace

ResidualAssay build_residual(const model::Assay& assay,
                             const schedule::SynthesisResult& original,
                             const sim::RunTrace& trace, const RecoveryCarry& carry,
                             const std::set<DeviceId>& also_failed) {
  ResidualAssay residual;
  residual.assay = model::Assay{assay.name() + " (recovery)", assay.registry()};

  // The surviving chip: every original device except the one that broke the
  // replay and any device struck alongside it (a failure whose time already
  // passed without stranding work is still dead hardware).
  const DeviceId failed =
      trace.failure && trace.failure->outcome == sim::RunOutcome::DeviceFailed
          ? trace.failure->device
          : DeviceId{};
  for (const model::Device& device : original.devices.devices()) {
    if (device.id == failed || also_failed.count(device.id) > 0) {
      continue;
    }
    residual.device_map.emplace(
        device.id, DeviceId{static_cast<std::int32_t>(residual.surviving_devices.size())});
    residual.surviving_devices.push_back(device.config);
  }

  const std::set<OperationId> completed(trace.completed.begin(), trace.completed.end());
  const std::set<OperationId> lost(trace.lost.begin(), trace.lost.end());
  std::map<OperationId, const sim::InFlightOperation*> in_flight;
  for (const sim::InFlightOperation& item : trace.in_flight) {
    in_flight.emplace(item.op, &item);
  }

  // Outstanding operations in ascending original-id order — parents were
  // added before children in the original, so the same holds here.
  for (const model::Operation& op : assay.operations()) {
    if (completed.count(op.id()) > 0) {
      continue;
    }
    model::OperationSpec spec;
    spec.name = op.name();
    spec.container = op.container();
    spec.capacity = op.capacity();
    spec.accessories = op.accessories();
    spec.duration = op.duration();
    spec.indeterminate = op.indeterminate();
    for (const OperationId parent : op.parents()) {
      if (completed.count(parent) > 0) {
        continue;  // the parent's product is already on the chip
      }
      spec.parents.push_back(residual.from_original.at(parent));
    }

    const auto running = in_flight.find(op.id());
    const auto carried = carry.find(op.id());
    DeviceId pin_device{};  // invalid = no pin
    if (lost.count(op.id()) > 0) {
      // Work lost for good (stranded on the dead device, or an exhausted
      // capture): re-run in full. When an earlier round had already credited
      // part of this op, "full" is the carried root duration, not the
      // residual one.
      if (carried != carry.end()) {
        spec.duration = carried->second.full_duration;
      }
    } else if (running != in_flight.end() &&
               also_failed.count(running->second->device) == 0) {
      // Elapsed-time credit: only the remaining realized time is re-planned
      // (for an indeterminate operation this is the remaining minimum — the
      // cyberphysical check still decides completion).
      spec.duration = running->second->remaining;
      pin_device = running->second->device;
    } else if (running != in_flight.end()) {
      // In flight on a device struck by a simultaneous or silent failure:
      // the replay saw a survivor, the chip did not. The fluid is lost with
      // the hardware; re-run in full.
      if (carried != carry.end()) {
        spec.duration = carried->second.full_duration;
      }
    } else if (carried != carry.end()) {
      // Pinned in an earlier round and not re-started yet: the fluid still
      // sits mid-execution on the pinned device. While that device lives the
      // op keeps its reduced duration and its pin; once it is gone, the
      // credit is lost and the op re-runs at its root duration.
      const DeviceId held = carried->second.device;
      if (held != failed && also_failed.count(held) == 0) {
        pin_device = held;
      } else {
        spec.duration = carried->second.full_duration;
      }
    }

    const OperationId residual_id = residual.assay.add_operation(std::move(spec));
    residual.to_original.emplace(residual_id, op.id());
    residual.from_original.emplace(op.id(), residual_id);
    if (pin_device.valid()) {
      const auto survivor = residual.device_map.find(pin_device);
      COHLS_EXPECT(survivor != residual.device_map.end(),
                   "in-flight operation bound to a failed device");
      residual.pinned.emplace(residual_id, survivor->second);
    }
  }
  return residual;
}

RecoveryOutcome recover(const model::Assay& assay,
                        const schedule::SynthesisResult& original,
                        const sim::RunTrace& trace, const SynthesisOptions& options,
                        const RecoveryCarry& carry,
                        const std::set<DeviceId>& also_failed) {
  RecoveryOutcome outcome;
  if (!trace.failure.has_value()) {
    outcome.diagnostics.push_back(make_diagnostic(
        diag::codes::kRecoveryNoFailure,
        "run trace reports no failure: there is nothing to recover",
        "call recover() only when simulate_run returns a broken trace"));
    return outcome;
  }

  outcome.residual = build_residual(assay, original, trace, carry, also_failed);
  const ResidualAssay& residual = outcome.residual;

  // Pre-flight: on a fabricated chip no new device can appear, so every
  // outstanding operation must fit some surviving device (E301) and every
  // pin target must still be able to run its operation (E303).
  for (const model::Operation& op : residual.assay.operations()) {
    const OperationId original_id = residual.to_original.at(op.id());
    const auto pin = residual.pinned.find(op.id());
    if (pin != residual.pinned.end()) {
      if (!model::is_compatible(op, residual.surviving_devices[pin->second.index()])) {
        std::ostringstream message;
        message << "in-flight operation " << original_id << " (" << op.name()
                << ") is pinned to surviving device " << pin->second
                << ", which cannot execute it";
        outcome.diagnostics.push_back(
            make_diagnostic(diag::codes::kRecoveryPinViolation, message.str()));
      }
      continue;
    }
    const bool bindable =
        std::any_of(residual.surviving_devices.begin(), residual.surviving_devices.end(),
                    [&op](const model::DeviceConfig& config) {
                      return model::is_compatible(op, config);
                    });
    if (!bindable) {
      std::ostringstream message;
      message << "operation " << original_id << " (" << op.name()
              << ") cannot execute on any surviving device";
      outcome.diagnostics.push_back(make_diagnostic(
          diag::codes::kRecoveryUnbindable, message.str(),
          "the failed device was the only hardware able to run this operation"));
    }
  }
  if (!outcome.diagnostics.empty()) {
    return outcome;
  }

  // Re-enter the normal flow on the residual assay, constrained to the
  // surviving hardware. The budget is derived from the surviving inventory
  // alone — never from `options.max_devices - <struck devices>`, which would
  // underflow when the failed device was the only instance of its class (or
  // the only device on the chip). An empty surviving inventory still needs
  // the positive budget DeviceInventory requires, but synthesis is never
  // reached then: the pre-flight loop above reported every outstanding
  // operation as E301.
  SynthesisOptions recovery_options = options;
  recovery_options.max_devices =
      residual.surviving_devices.empty()
          ? 1
          : static_cast<int>(residual.surviving_devices.size());
  PassPolicy policy;
  policy.initial_devices = residual.surviving_devices;
  policy.pinned = residual.pinned;
  policy.allow_new_devices = false;

  try {
    outcome.continuation = synthesize(residual.assay, recovery_options, policy);
  } catch (const CancelledError&) {
    throw;
  } catch (const InfeasibleError& error) {
    outcome.diagnostics.push_back(make_diagnostic(
        diag::codes::kRecoveryInfeasible,
        std::string{"no continuation schedule exists on the surviving devices: "} +
            error.what()));
    return outcome;
  }

  // The continuation is only trusted certified: pins honoured, then the
  // full E2xx certifier.
  const std::map<OperationId, DeviceId> binding = outcome.continuation.result.binding();
  for (const auto& [op, device] : residual.pinned) {
    const auto bound = binding.find(op);
    if (bound == binding.end() || bound->second != device) {
      std::ostringstream message;
      message << "in-flight operation " << residual.to_original.at(op)
              << " was re-bound away from its pinned device " << device;
      outcome.diagnostics.push_back(
          make_diagnostic(diag::codes::kRecoveryPinViolation, message.str()));
    }
  }
  const std::vector<diag::Diagnostic> certification = schedule::certify_result(
      outcome.continuation.result, residual.assay, outcome.continuation.transport);
  if (diag::has_errors(certification)) {
    diag::Diagnostic failure = make_diagnostic(
        diag::codes::kRecoveryInvalidContinuation,
        "continuation schedule failed certification (" +
            std::to_string(diag::count(certification, diag::Severity::Error)) +
            " errors)");
    for (const diag::Diagnostic& evidence : certification) {
      failure.notes.push_back(diag::Note{diag::summary_line(evidence)});
    }
    outcome.diagnostics.push_back(std::move(failure));
  }
  outcome.recovered = outcome.diagnostics.empty();
  return outcome;
}

MissionOutcome run_mission(const model::Assay& assay,
                           const schedule::SynthesisResult& original,
                           const sim::RuntimeOptions& runtime,
                           const MissionOptions& mission) {
  MissionOutcome outcome;

  // Mission state, threaded across rounds. `current_*` hold the round's
  // dense frame; the maps translate between it and the root frame. All
  // timing flows through the caller token's deadline plumbing — the loop
  // itself never reads a clock, so identical inputs stitch identical
  // outputs byte for byte.
  model::Assay current_assay = assay;
  schedule::SynthesisResult current_result = original;
  std::map<OperationId, OperationId> op_to_root;
  std::map<OperationId, OperationId> root_to_op;
  std::map<DeviceId, DeviceId> dev_to_root;
  std::map<DeviceId, DeviceId> root_to_dev;
  for (const model::Operation& op : assay.operations()) {
    op_to_root.emplace(op.id(), op.id());
    root_to_op.emplace(op.id(), op.id());
  }
  for (const model::Device& device : original.devices.devices()) {
    dev_to_root.emplace(device.id, device.id);
    root_to_dev.emplace(device.id, device.id);
  }
  std::set<DeviceId> dead;                  // root ids struck so far
  std::set<OperationId> consumed_exhausts;  // root ids of exhaustions absorbed
  Minutes clock_offset{0};
  RecoveryCarry carry;
  const CancellationToken caller = mission.synthesis.cancel;

  // Mirrors the fleet's sampling-horizon rule: scripted degradations or
  // transport delays make the realized end unbounded, so hazard clipping is
  // disabled for the whole mission in that case.
  constexpr Minutes kNoHorizon{std::numeric_limits<std::int64_t>::max()};
  bool unbounded_horizon = false;
  for (const sim::FaultEvent& event : runtime.faults.events) {
    if (event.kind == sim::FaultKind::Degradation ||
        event.kind == sim::FaultKind::TransportDelay) {
      unbounded_horizon = true;
    }
  }

  sim::Replayer replayer;
  sim::RuntimeOptions round_runtime = runtime;
  sim::FaultPlan root_plan = runtime.faults;  // scripted prefix + hazard samples
  const std::size_t scripted = runtime.faults.events.size();
  int next_layer = 0;

  for (;;) {
    if (caller.stop_requested()) {
      throw CancelledError{"recovery mission cancelled"};
    }
    const sim::CompiledSchedule compiled =
        sim::compile_schedule(current_result, current_assay);

    // Re-sample hazards against the ROOT inventory with the same
    // (seed, run) counter streams the fleet used: every draw reproduces
    // bit-identically, and the horizon extended to the continuation's
    // worst case (on the mission clock) admits exactly the failures the
    // root sampling clipped.
    if (mission.hazard != nullptr && !mission.hazard->empty()) {
      root_plan.events.resize(scripted);
      const Minutes horizon =
          unbounded_horizon ? kNoHorizon
                            : clock_offset + compiled.worst_case_end(runtime.max_attempts);
      mission.hazard->sample_into(root_plan, original.devices, mission.hazard_seed,
                                  mission.hazard_run, horizon);
    }

    // Re-anchor the root-frame plan to this round's clock and ids. Device
    // failures already in the past cannot break the replay but the hardware
    // is still gone: they are collected and struck at the next recovery.
    round_runtime.faults.events.clear();
    std::vector<sim::FaultEvent> past_failures;  // root frame
    for (const sim::FaultEvent& event : root_plan.events) {
      sim::FaultEvent local = event;
      switch (event.kind) {
        case sim::FaultKind::DeviceFailure: {
          if (dead.count(event.device) > 0) {
            continue;
          }
          const auto mapped = root_to_dev.find(event.device);
          if (mapped == root_to_dev.end()) {
            continue;
          }
          if (event.at <= clock_offset) {
            past_failures.push_back(event);
            continue;
          }
          local.device = mapped->second;
          local.at = event.at - clock_offset;
          break;
        }
        case sim::FaultKind::AttemptExhaustion: {
          if (consumed_exhausts.count(event.op) > 0) {
            continue;  // the failing capture was re-run by a recovery round
          }
          const auto mapped = root_to_op.find(event.op);
          if (mapped == root_to_op.end()) {
            continue;  // the operation already completed
          }
          local.op = mapped->second;
          break;
        }
        case sim::FaultKind::Degradation:
        case sim::FaultKind::TransportDelay: {
          if (local.device.valid()) {
            const auto mapped = root_to_dev.find(event.device);
            if (mapped == root_to_dev.end()) {
              continue;
            }
            local.device = mapped->second;
          }
          local.at = event.at > clock_offset ? event.at - clock_offset : Minutes{0};
          break;
        }
      }
      round_runtime.faults.events.push_back(local);
    }

    const sim::RunTrace trace = replayer.run(compiled, round_runtime);

    // Stitch this round into the end-to-end trace: root ids, mission clock,
    // layer ids renumbered sequentially.
    for (const sim::LayerTrace& layer : trace.layers) {
      sim::LayerTrace stitched;
      stitched.layer = LayerId{next_layer++};
      stitched.start = layer.start + clock_offset;
      stitched.end = layer.end + clock_offset;
      stitched.operations.reserve(layer.operations.size());
      for (const sim::OperationTrace& op : layer.operations) {
        sim::OperationTrace mapped = op;
        mapped.op = op_to_root.at(op.op);
        mapped.device = dev_to_root.at(op.device);
        mapped.start = op.start + clock_offset;
        stitched.operations.push_back(mapped);
      }
      outcome.final_trace.layers.push_back(std::move(stitched));
    }
    for (const OperationId op : trace.completed) {
      outcome.final_trace.completed.push_back(op_to_root.at(op));
    }
    outcome.final_trace.planned_fixed =
        outcome.final_trace.planned_fixed + trace.planned_fixed;
    outcome.final_trace.completed_at = clock_offset + trace.completed_at;
    outcome.final_trace.outcome = trace.outcome;

    if (trace.ok()) {
      outcome.recovered = true;
      outcome.completed_at = clock_offset + trace.completed_at;
      outcome.final_trace.failure.reset();
      outcome.final_trace.in_flight.clear();
      outcome.final_trace.lost.clear();
      return outcome;
    }

    const sim::RunFailure& failure = *trace.failure;
    const Minutes break_at = clock_offset + failure.at;

    // Devices struck alongside the break: silent past failures and failures
    // scheduled up to the break minute on other devices (the simultaneous
    // tie). Both are physically gone.
    std::set<DeviceId> also_failed;  // current ids
    std::vector<sim::FaultEvent> struck;
    for (const sim::FaultEvent& event : past_failures) {
      const auto mapped = root_to_dev.find(event.device);
      if (mapped != root_to_dev.end() && also_failed.insert(mapped->second).second) {
        struck.push_back(event);
      }
    }
    for (const sim::FaultEvent& event : round_runtime.faults.events) {
      if (event.kind != sim::FaultKind::DeviceFailure || event.at > failure.at) {
        continue;
      }
      if (failure.outcome == sim::RunOutcome::DeviceFailed &&
          event.device == failure.device) {
        continue;
      }
      if (also_failed.insert(event.device).second) {
        sim::FaultEvent root_event = event;
        root_event.device = dev_to_root.at(event.device);
        root_event.at = event.at + clock_offset;
        struck.push_back(root_event);
      }
    }

    sim::FaultEvent break_event;
    break_event.kind = failure.outcome == sim::RunOutcome::DeviceFailed
                           ? sim::FaultKind::DeviceFailure
                           : sim::FaultKind::AttemptExhaustion;
    if (failure.device.valid()) {
      break_event.device = dev_to_root.at(failure.device);
    }
    if (failure.op.valid()) {
      break_event.op = op_to_root.at(failure.op);
    }
    break_event.at = break_at;
    outcome.fault_chain.push_back(break_event);
    for (const sim::FaultEvent& event : struck) {
      outcome.fault_chain.push_back(event);
    }

    // Map the final trace's failure/in-flight/lost into the root frame in
    // case this turns out to be the last round.
    outcome.final_trace.failure = failure;
    outcome.final_trace.failure->at = break_at;
    if (failure.device.valid()) {
      outcome.final_trace.failure->device = break_event.device;
    }
    if (failure.op.valid()) {
      outcome.final_trace.failure->op = break_event.op;
    }
    outcome.final_trace.in_flight.clear();
    for (const sim::InFlightOperation& item : trace.in_flight) {
      sim::InFlightOperation mapped = item;
      mapped.op = op_to_root.at(item.op);
      mapped.device = dev_to_root.at(item.device);
      mapped.started = item.started + clock_offset;
      outcome.final_trace.in_flight.push_back(mapped);
    }
    outcome.final_trace.lost.clear();
    for (const OperationId op : trace.lost) {
      outcome.final_trace.lost.push_back(op_to_root.at(op));
    }

    MissionRound entry;
    entry.break_at = break_at;
    entry.outcome = failure.outcome;
    if (failure.outcome == sim::RunOutcome::DeviceFailed) {
      entry.failed_device = dev_to_root.at(failure.device);
    }

    if (outcome.rounds >= mission.max_rounds) {
      std::ostringstream message;
      message << "mission recovery budget exhausted: fault "
              << (outcome.fault_chain.size()) << " at minute " << break_at.count()
              << " arrived after the allowed " << mission.max_rounds
              << " recovery round(s)";
      diag::Diagnostic frozen =
          make_diagnostic(diag::codes::kRecoveryBudgetExhausted, message.str(),
                          "raise --recover-rounds to survive longer fault chains");
      outcome.diagnostics.push_back(std::move(frozen));
      attach_fault_chain(outcome.diagnostics, outcome.fault_chain);
      outcome.round_log.push_back(entry);
      return outcome;
    }

    // Recover a certified continuation under the round budget. A deadline
    // expiry without an explicit stop degrades to the heuristic-only ladder
    // (ILP off, deadline stripped) instead of cancelling the mission.
    SynthesisOptions round_options = mission.synthesis;
    round_options.cancel = caller.with_earlier_deadline(mission.round_budget_seconds);
    RecoveryOutcome rec;
    try {
      rec = recover(current_assay, current_result, trace, round_options, carry,
                    also_failed);
    } catch (const CancelledError&) {
      if (!mission.degrade_on_deadline || caller.stop_requested()) {
        throw;
      }
      SynthesisOptions degraded_options = mission.synthesis;
      degraded_options.engine.enable_ilp = false;
      degraded_options.cancel = caller.without_deadline();
      rec = recover(current_assay, current_result, trace, degraded_options, carry,
                    also_failed);
      entry.degraded = true;
      outcome.degraded = true;
    }
    entry.recovered = rec.recovered;
    entry.pinned_ops = static_cast<int>(rec.residual.pinned.size());

    // Elapsed-time credit granted this round: work already done by ops that
    // stay pinned on true survivors. Cumulative, hence monotone.
    Minutes credit{0};
    for (const sim::InFlightOperation& item : trace.in_flight) {
      if (also_failed.count(item.device) == 0) {
        credit = credit + item.elapsed;
      }
    }
    entry.credit = credit;
    outcome.credit_carried = outcome.credit_carried + credit;
    outcome.round_log.push_back(entry);

    if (!rec.recovered) {
      outcome.diagnostics = std::move(rec.diagnostics);
      attach_fault_chain(outcome.diagnostics, outcome.fault_chain);
      return outcome;
    }
    ++outcome.rounds;

    // Fold the struck hardware into the root-frame dead set.
    if (failure.outcome == sim::RunOutcome::DeviceFailed) {
      dead.insert(dev_to_root.at(failure.device));
    } else if (failure.op.valid()) {
      consumed_exhausts.insert(op_to_root.at(failure.op));
    }
    for (const DeviceId device : also_failed) {
      dead.insert(dev_to_root.at(device));
    }

    // Compose the id maps through the residual's dense remapping, and carry
    // the continuation's pins with their root full durations (the fallback
    // when a pinned device later dies and the credit is lost).
    std::map<OperationId, OperationId> next_op_to_root;
    std::map<OperationId, OperationId> next_root_to_op;
    for (const auto& [residual_id, current_id] : rec.residual.to_original) {
      const OperationId root = op_to_root.at(current_id);
      next_op_to_root.emplace(residual_id, root);
      next_root_to_op.emplace(root, residual_id);
    }
    std::map<DeviceId, DeviceId> next_dev_to_root;
    std::map<DeviceId, DeviceId> next_root_to_dev;
    for (const auto& [current_id, residual_id] : rec.residual.device_map) {
      const DeviceId root = dev_to_root.at(current_id);
      next_dev_to_root.emplace(residual_id, root);
      next_root_to_dev.emplace(root, residual_id);
    }
    RecoveryCarry next_carry;
    for (const auto& [residual_id, device] : rec.residual.pinned) {
      const OperationId root = next_op_to_root.at(residual_id);
      next_carry.emplace(residual_id,
                         CarriedPin{device, assay.operation(root).duration()});
    }

    op_to_root = std::move(next_op_to_root);
    root_to_op = std::move(next_root_to_op);
    dev_to_root = std::move(next_dev_to_root);
    root_to_dev = std::move(next_root_to_dev);
    carry = std::move(next_carry);
    clock_offset = break_at;
    current_assay = std::move(rec.residual.assay);
    current_result = std::move(rec.continuation.result);
  }
}

}  // namespace cohls::core
