// Degraded-mode recovery re-synthesis. When a cyberphysical run breaks
// mid-assay (sim::RunTrace with a RunFailure), the chip is already
// fabricated and partially executed: completed operations hold their
// products, in-flight operations sit mid-execution on healthy devices, and
// a failed device (if any) is gone for good. Recovery re-enters the
// existing layering + progressive re-synthesis flow on the *residual*
// assay — the outstanding work only — under run-time constraints: no new
// devices (the chip cannot grow), the failed device struck from the
// inventory, and in-flight operations pinned to the device already running
// them with credit for the time they have already spent.
//
// The contract is certified-or-diagnosed: recover() either returns a
// continuation schedule that passes the full E2xx certifier, or a
// structured COHLS-E3xx diagnostic explaining why the fault cannot be
// scheduled around. It never fabricates a continuation.
#pragma once

#include <map>
#include <vector>

#include "core/options.hpp"
#include "core/progressive_resynthesis.hpp"
#include "diag/diagnostic.hpp"
#include "sim/runtime.hpp"

namespace cohls::core {

/// The outstanding work of a broken run, re-expressed as a standalone assay
/// with dense operation ids (ascending original order, so parents precede
/// children by construction).
struct ResidualAssay {
  model::Assay assay{"residual"};
  /// residual id -> original id.
  std::map<OperationId, OperationId> to_original;
  /// original id -> residual id (completed originals are absent).
  std::map<OperationId, OperationId> from_original;
  /// In-flight residual operations, pinned to the surviving device (by
  /// *surviving* id) already running them. Their residual duration is the
  /// realized time still needed — elapsed work is credited, not repeated.
  std::map<OperationId, DeviceId> pinned;
  /// The surviving chip: configs in surviving-id order (0, 1, ...).
  std::vector<model::DeviceConfig> surviving_devices;
  /// original device id -> surviving device id (failed devices are absent).
  std::map<DeviceId, DeviceId> device_map;
};

struct RecoveryOutcome {
  /// True iff `continuation` exists and passed the certifier.
  bool recovered = false;
  /// The certified continuation schedule over the residual assay. Its
  /// device ids are surviving ids (see ResidualAssay::device_map); layer 0
  /// resumes exactly at the break point.
  SynthesisReport continuation;
  ResidualAssay residual;
  /// Empty iff recovered. Otherwise COHLS-E3xx (plus any certifier E2xx
  /// evidence attached under an E302).
  std::vector<diag::Diagnostic> diagnostics;
};

/// Builds the residual assay of a broken run: completed operations are
/// dropped (and their parent edges with them), in-flight operations keep
/// only their remaining realized duration and a device pin, lost operations
/// (stranded on the dead device, or exhausted) re-run in full.
[[nodiscard]] ResidualAssay build_residual(const model::Assay& assay,
                                           const schedule::SynthesisResult& original,
                                           const sim::RunTrace& trace);

/// Re-synthesizes the residual assay on the surviving chip. `options` is
/// the original synthesis configuration; recovery overrides the device
/// budget (fixed to the surviving inventory) and forbids new devices.
/// Throws CancelledError when options.cancel fires; every other failure is
/// reported as a diagnostic, never an exception.
[[nodiscard]] RecoveryOutcome recover(const model::Assay& assay,
                                      const schedule::SynthesisResult& original,
                                      const sim::RunTrace& trace,
                                      const SynthesisOptions& options = {});

}  // namespace cohls::core
