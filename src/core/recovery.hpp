// Degraded-mode recovery re-synthesis. When a cyberphysical run breaks
// mid-assay (sim::RunTrace with a RunFailure), the chip is already
// fabricated and partially executed: completed operations hold their
// products, in-flight operations sit mid-execution on healthy devices, and
// a failed device (if any) is gone for good. Recovery re-enters the
// existing layering + progressive re-synthesis flow on the *residual*
// assay — the outstanding work only — under run-time constraints: no new
// devices (the chip cannot grow), the failed device struck from the
// inventory, and in-flight operations pinned to the device already running
// them with credit for the time they have already spent.
//
// The contract is certified-or-diagnosed: recover() either returns a
// continuation schedule that passes the full E2xx certifier, or a
// structured COHLS-E3xx diagnostic explaining why the fault cannot be
// scheduled around. It never fabricates a continuation.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "core/options.hpp"
#include "core/progressive_resynthesis.hpp"
#include "diag/diagnostic.hpp"
#include "sim/hazard.hpp"
#include "sim/runtime.hpp"

namespace cohls::core {

/// A pin carried across recovery rounds. When a continuation breaks before a
/// previously in-flight operation has re-started, its fluid still sits
/// mid-execution on the pinned device: the operation keeps the pin and its
/// reduced (remaining) duration. If that device later dies, the credit is
/// physically lost and the operation must re-run at `full_duration` — its
/// duration in the ROOT assay, not the already-credited residual one.
struct CarriedPin {
  DeviceId device;         ///< current-schedule device id holding the fluid
  Minutes full_duration{0};  ///< root duration restored when the credit is lost
};

/// Keyed by *current-round* operation id (the assay recover() is called on).
using RecoveryCarry = std::map<OperationId, CarriedPin>;

/// The outstanding work of a broken run, re-expressed as a standalone assay
/// with dense operation ids (ascending original order, so parents precede
/// children by construction).
struct ResidualAssay {
  model::Assay assay{"residual"};
  /// residual id -> original id.
  std::map<OperationId, OperationId> to_original;
  /// original id -> residual id (completed originals are absent).
  std::map<OperationId, OperationId> from_original;
  /// In-flight residual operations, pinned to the surviving device (by
  /// *surviving* id) already running them. Their residual duration is the
  /// realized time still needed — elapsed work is credited, not repeated.
  std::map<OperationId, DeviceId> pinned;
  /// The surviving chip: configs in surviving-id order (0, 1, ...).
  std::vector<model::DeviceConfig> surviving_devices;
  /// original device id -> surviving device id (failed devices are absent).
  std::map<DeviceId, DeviceId> device_map;
};

struct RecoveryOutcome {
  /// True iff `continuation` exists and passed the certifier.
  bool recovered = false;
  /// The certified continuation schedule over the residual assay. Its
  /// device ids are surviving ids (see ResidualAssay::device_map); layer 0
  /// resumes exactly at the break point.
  SynthesisReport continuation;
  ResidualAssay residual;
  /// Empty iff recovered. Otherwise COHLS-E3xx (plus any certifier E2xx
  /// evidence attached under an E302).
  std::vector<diag::Diagnostic> diagnostics;
};

/// Builds the residual assay of a broken run: completed operations are
/// dropped (and their parent edges with them), in-flight operations keep
/// only their remaining realized duration and a device pin, lost operations
/// (stranded on the dead device, or exhausted) re-run in full.
///
/// Re-entrant extensions (the mission loop threads these across rounds):
/// `carry` holds pins from a previous round that have not re-started yet —
/// the op keeps its pin and reduced duration while its device lives, and
/// falls back to the carried full (root) duration when it does not.
/// `also_failed` names devices (current ids) struck in addition to the
/// trace's breaking device: failures whose time already passed without
/// breaking the replay (nothing finished after them) still mean the
/// hardware is gone, so rebinding onto them would fabricate a continuation.
/// An op in flight on an also_failed device is treated as lost.
[[nodiscard]] ResidualAssay build_residual(const model::Assay& assay,
                                           const schedule::SynthesisResult& original,
                                           const sim::RunTrace& trace,
                                           const RecoveryCarry& carry = {},
                                           const std::set<DeviceId>& also_failed = {});

/// Re-synthesizes the residual assay on the surviving chip. `options` is
/// the original synthesis configuration; recovery overrides the device
/// budget (fixed to the surviving inventory) and forbids new devices.
/// Throws CancelledError when options.cancel fires; every other failure is
/// reported as a diagnostic, never an exception. `carry`/`also_failed` as
/// in build_residual.
[[nodiscard]] RecoveryOutcome recover(const model::Assay& assay,
                                      const schedule::SynthesisResult& original,
                                      const sim::RunTrace& trace,
                                      const SynthesisOptions& options = {},
                                      const RecoveryCarry& carry = {},
                                      const std::set<DeviceId>& also_failed = {});

// ---------------------------------------------------------------------------
// Re-entrant multi-fault recovery missions
// ---------------------------------------------------------------------------

struct MissionOptions {
  /// Synthesis configuration for every recovery round. `synthesis.cancel`
  /// is the caller's (job) token: an explicit stop always propagates as
  /// CancelledError; a *deadline* expiry can instead degrade (below).
  SynthesisOptions synthesis{};
  /// Recovery rounds allowed before the mission freezes with E305 — i.e.
  /// the number of faults the mission may survive. 1 reproduces the
  /// single-fault behaviour of recover().
  int max_rounds = 3;
  /// Per-round wall budget in seconds (0 = none), applied on top of the
  /// caller token via CancellationToken::with_earlier_deadline. All mission
  /// timing flows through this deadline plumbing; the loop itself never
  /// reads a clock, keeping stitched outputs byte-deterministic.
  double round_budget_seconds = 0.0;
  /// When a round's re-synthesis blows its deadline (round budget or the
  /// caller's own) without an explicit stop, retry the round heuristic-only
  /// (ILP off, deadline stripped) and mark the mission `degraded` instead
  /// of failing the job.
  bool degrade_on_deadline = true;
  /// Optional hazard model re-sampled each round against the ROOT inventory
  /// with the same (seed, run) counter streams — identical draws, extended
  /// horizon `clock_offset + continuation worst_case_end` — so continuation
  /// replays admit exactly the failures the fleet's root sampling clipped.
  const sim::HazardModel* hazard = nullptr;
  std::uint64_t hazard_seed = 1;
  std::uint64_t hazard_run = 0;
};

/// One replay→recover round of a mission.
struct MissionRound {
  Minutes break_at{0};  ///< mission (root) clock of the break
  sim::RunOutcome outcome = sim::RunOutcome::DeviceFailed;
  DeviceId failed_device;  ///< root id; invalid for attempt exhaustion
  int pinned_ops = 0;      ///< in-flight ops carried into the continuation
  Minutes credit{0};       ///< elapsed-time credit granted this round
  bool degraded = false;   ///< heuristic-only ladder used
  bool recovered = false;  ///< the round produced a certified continuation
};

/// Composite outcome of an iterated replay→recover→re-certify mission.
struct MissionOutcome {
  /// True iff the final continuation replayed to completion and every
  /// recovery round along the way was certified ("recovered after k
  /// faults", k = rounds).
  bool recovered = false;
  bool degraded = false;  ///< any round used the heuristic-only ladder
  int rounds = 0;         ///< recovery rounds performed (faults survived)
  Minutes completed_at{0};    ///< mission-clock end when recovered
  Minutes credit_carried{0};  ///< cumulative elapsed-time credit (monotone)
  std::vector<MissionRound> round_log;
  /// Every fault the mission absorbed, on the root clock with root ids
  /// (breaking faults and silently-struck past failures alike).
  std::vector<sim::FaultEvent> fault_chain;
  /// Stitched end-to-end trace: layers of every round appended with root
  /// operation/device ids and mission-clock times (layer ids renumbered
  /// sequentially); `completed` accumulates across rounds; failure/
  /// in-flight/lost reflect the final round.
  sim::RunTrace final_trace;
  /// Empty iff recovered; E3xx otherwise, with the fault chain in notes.
  std::vector<diag::Diagnostic> diagnostics;
};

/// Runs the re-entrant mission loop: replay the schedule under `runtime`
/// (scripted faults on the root clock, plus optional per-round hazard
/// re-sampling), and on each break recover a certified continuation —
/// threading surviving inventory, elapsed-time credit and carried pins —
/// until the replay completes, recovery fails (frozen E3xx), or
/// `max_rounds` is exhausted (E305). Throws CancelledError only on an
/// explicit caller stop.
[[nodiscard]] MissionOutcome run_mission(const model::Assay& assay,
                                         const schedule::SynthesisResult& original,
                                         const sim::RuntimeOptions& runtime,
                                         const MissionOptions& mission = {});

}  // namespace cohls::core
