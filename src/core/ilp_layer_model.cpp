#include "core/ilp_layer_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "milp/bounds.hpp"
#include "model/compatibility.hpp"
#include "util/check.hpp"

namespace cohls::core {

namespace {
std::string var_name(const std::string& base, int a, int b = -1) {
  std::ostringstream out;
  out << base << '_' << a;
  if (b >= 0) {
    out << '_' << b;
  }
  return out.str();
}
}  // namespace

IlpLayerModel::IlpLayerModel(const model::Assay& assay, IlpLayerInputs inputs,
                             const schedule::TransportPlan& transport,
                             const model::CostModel& costs)
    : assay_(assay), inputs_(std::move(inputs)), transport_(transport), costs_(costs) {
  COHLS_EXPECT(!inputs_.ops.empty(), "a layer model needs at least one operation");
  COHLS_EXPECT(inputs_.new_slots >= 0, "new slot count must be non-negative");
  in_layer_ = std::set<OperationId>(inputs_.ops.begin(), inputs_.ops.end());
  for (std::size_t i = 0; i < inputs_.ops.size(); ++i) {
    op_index_[inputs_.ops[i]] = static_cast<int>(i);
  }
  build();
}

int IlpLayerModel::op_index(OperationId id) const {
  const auto it = op_index_.find(id);
  COHLS_EXPECT(it != op_index_.end(), "operation is not in this layer");
  return it->second;
}

lp::Col IlpLayerModel::binding_var(int op, int device) const {
  COHLS_EXPECT(op >= 0 && op < static_cast<int>(binding_.size()), "op index out of range");
  COHLS_EXPECT(device >= 0 && device < device_count(), "device index out of range");
  return binding_[static_cast<std::size_t>(op)][static_cast<std::size_t>(device)];
}

lp::Col IlpLayerModel::start_var(int op) const {
  COHLS_EXPECT(op >= 0 && op < static_cast<int>(start_.size()), "op index out of range");
  return start_[static_cast<std::size_t>(op)];
}

Minutes IlpLayerModel::outgoing_reserve(OperationId id) const {
  Minutes reserve{0};
  for (const OperationId child : assay_.children(id)) {
    if (in_layer_.count(child)) {
      reserve = std::max(reserve, transport_.edge_time(id, child));
    }
  }
  return reserve;
}

double IlpLayerModel::occupation(int op) const {
  const OperationId id = inputs_.ops[static_cast<std::size_t>(op)];
  return static_cast<double>((assay_.operation(id).duration() + outgoing_reserve(id)).count());
}

bool IlpLayerModel::precedes(int a, int b) const {
  return reach_[static_cast<std::size_t>(a)].count(b) > 0;
}

bool IlpLayerModel::must_overlap(int a, int b) const {
  const double dur_a = static_cast<double>(
      assay_.operation(inputs_.ops[static_cast<std::size_t>(a)]).duration().count());
  const double dur_b = static_cast<double>(
      assay_.operation(inputs_.ops[static_cast<std::size_t>(b)]).duration().count());
  const double occ_a = occupation(a);
  const double occ_b = occupation(b);
  // "a runs after b" (q0 = 0) is impossible when a precedes b or the windows
  // leave no room for st_a >= st_b + occ_b; symmetrically for "a before b".
  const bool a_after_b_impossible =
      (precedes(a, b) && dur_a + occ_b > 0.0) ||
      lst_[static_cast<std::size_t>(a)] <
          est_[static_cast<std::size_t>(b)] + occ_b - 1e-9;
  const bool a_before_b_impossible =
      (precedes(b, a) && dur_b + occ_a > 0.0) ||
      lst_[static_cast<std::size_t>(b)] <
          est_[static_cast<std::size_t>(a)] + occ_a - 1e-9;
  return a_after_b_impossible && a_before_b_impossible;
}

bool IlpLayerModel::device_compatible(const model::Operation& op, int device) const {
  const auto& config = device_config_[static_cast<std::size_t>(device)];
  if (config.has_value()) {
    return model::is_compatible(op, *config);
  }
  return true;  // new slot: the configuration constraints handle legality
}

void IlpLayerModel::build() {
  // --- visible device list -------------------------------------------------
  for (const auto& [id, config] : inputs_.fixed_devices) {
    device_kind_.push_back(SlotKind::Fixed);
    device_config_.push_back(config);
    fixed_ids_.push_back(id);
  }
  for (const auto& hint : inputs_.hints) {
    device_kind_.push_back(SlotKind::Hint);
    device_config_.push_back(hint.config);
  }
  for (int s = 0; s < inputs_.new_slots; ++s) {
    device_kind_.push_back(SlotKind::New);
    device_config_.push_back(std::nullopt);
  }
  COHLS_EXPECT(device_count() >= 1, "the layer model needs at least one device slot");

  // --- horizon and big-M -----------------------------------------------------
  double total = 0.0;
  Minutes max_cross{0};
  for (const OperationId id : inputs_.ops) {
    total += static_cast<double>(
        (assay_.operation(id).duration() + outgoing_reserve(id)).count());
    for (const OperationId parent : assay_.operation(id).parents()) {
      if (!in_layer_.count(parent)) {
        max_cross = std::max(max_cross, transport_.edge_time(parent, id));
      }
    }
  }
  horizon_ = total + static_cast<double>(max_cross.count());
  big_m_ = horizon_ + 1.0;

  // --- core variables --------------------------------------------------------
  const int n = static_cast<int>(inputs_.ops.size());
  binding_.assign(static_cast<std::size_t>(n), {});
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < device_count(); ++j) {
      binding_[static_cast<std::size_t>(i)].push_back(
          model_.add_binary(0.0, var_name("o_d", i, j)));
    }
  }
  for (int i = 0; i < n; ++i) {
    start_.push_back(model_.add_variable(milp::VarKind::Integer, 0.0, horizon_, 0.0,
                                         var_name("st", i)));
  }
  makespan_ = model_.add_variable(milp::VarKind::Continuous, 0.0, horizon_,
                                  costs_.weight_time(), "sum_t");

  tighten_time_windows();
  add_device_configuration();
  add_binding_consistency();
  add_dependencies();
  add_conflicts();
  add_clique_cuts();
  add_indeterminate_rules();
  add_objective_sums();
  add_cost_floor_cuts();
}

// Per-operation start windows [est, lst], derived from the dependency
// structure alone and folded into the start columns' bounds. Everything
// downstream keys off these windows: the per-pair big-M constants in
// (10)-(11), the q fixings, the clique cuts, and the node-bound provider
// (whose root windows are exactly these column bounds).
void IlpLayerModel::tighten_time_windows() {
  const int n = static_cast<int>(inputs_.ops.size());
  est_.assign(static_cast<std::size_t>(n), 0.0);
  lst_.assign(static_cast<std::size_t>(n), horizon_);
  reach_.assign(static_cast<std::size_t>(n), {});

  std::vector<std::vector<int>> children(static_cast<std::size_t>(n));
  for (const OperationId child_id : inputs_.ops) {
    const int c = op_index(child_id);
    for (const OperationId parent_id : assay_.operation(child_id).parents()) {
      if (in_layer_.count(parent_id)) {
        children[static_cast<std::size_t>(op_index(parent_id))].push_back(c);
      } else {
        // Cross-layer parent: with no fixed producer device the arrival time
        // is a hard earliest start (the dep_cross row); with one, the child
        // may co-locate and start at zero, so nothing is implied.
        const double t =
            static_cast<double>(transport_.edge_time(parent_id, child_id).count());
        const auto prior = inputs_.prior_binding.find(parent_id);
        const bool producer_fixed =
            prior != inputs_.prior_binding.end() &&
            std::find(fixed_ids_.begin(), fixed_ids_.end(), prior->second) !=
                fixed_ids_.end();
        if (t > 0.0 && !producer_fixed) {
          est_[static_cast<std::size_t>(c)] =
              std::max(est_[static_cast<std::size_t>(c)], t);
        }
      }
    }
  }

  // Precedence closure (the layer DAG is small; per-op DFS is fine).
  for (int a = 0; a < n; ++a) {
    std::vector<int> stack = children[static_cast<std::size_t>(a)];
    while (!stack.empty()) {
      const int b = stack.back();
      stack.pop_back();
      if (reach_[static_cast<std::size_t>(a)].insert(b).second) {
        for (const int grandchild : children[static_cast<std::size_t>(b)]) {
          stack.push_back(grandchild);
        }
      }
    }
  }

  const auto duration = [this](int i) {
    return static_cast<double>(
        assay_.operation(inputs_.ops[static_cast<std::size_t>(i)]).duration().count());
  };

  // Longest-path relaxation over the DAG. A same-device child pays no
  // transport, so only durations are safe to propagate.
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (int p = 0; p < n; ++p) {
      for (const int c : children[static_cast<std::size_t>(p)]) {
        const double reach_time = est_[static_cast<std::size_t>(p)] + duration(p);
        if (reach_time > est_[static_cast<std::size_t>(c)] + 1e-9) {
          est_[static_cast<std::size_t>(c)] = reach_time;
          changed = true;
        }
      }
    }
    if (!changed) {
      break;
    }
  }

  // Latest starts against the horizon: st_i + (longest duration chain from i
  // inclusive) <= makespan <= horizon.
  std::vector<double> down(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    down[static_cast<std::size_t>(i)] = duration(i);
  }
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (int p = 0; p < n; ++p) {
      for (const int c : children[static_cast<std::size_t>(p)]) {
        const double chain = duration(p) + down[static_cast<std::size_t>(c)];
        if (chain > down[static_cast<std::size_t>(p)] + 1e-9) {
          down[static_cast<std::size_t>(p)] = chain;
          changed = true;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
  for (int i = 0; i < n; ++i) {
    lst_[static_cast<std::size_t>(i)] = horizon_ - down[static_cast<std::size_t>(i)];
    COHLS_ASSERT(est_[static_cast<std::size_t>(i)] <=
                     lst_[static_cast<std::size_t>(i)] + 1e-9,
                 "time-window propagation left an empty start window");
    model_.lp().set_bounds(start_var(i), est_[static_cast<std::size_t>(i)],
                           lst_[static_cast<std::size_t>(i)]);
  }
}

// Constraints (1)-(4), gated on a `used` indicator so an untouched slot
// carries no configuration and no cost.
void IlpLayerModel::add_device_configuration() {
  // Accessory kinds any layer operation requires; other kinds can only
  // raise cost, so new slots never need them.
  std::set<model::AccessoryId> relevant;
  for (const OperationId id : inputs_.ops) {
    for (const model::AccessoryId acc : assay_.operation(id).accessories().to_list()) {
      relevant.insert(acc);
    }
  }

  for (int j = 0; j < device_count(); ++j) {
    if (device_kind_[static_cast<std::size_t>(j)] != SlotKind::New) {
      continue;
    }
    NewSlotVars vars;
    vars.used = model_.add_binary(0.0, var_name("d_used", j));
    vars.ring = model_.add_binary(0.0, var_name("d_r", j));
    vars.chamber = model_.add_binary(0.0, var_name("d_ch", j));
    for (const model::Capacity cap : model::kAllCapacities) {
      vars.capacity[static_cast<std::size_t>(cap)] =
          model_.add_binary(0.0, var_name("d_c", j, static_cast<int>(cap)));
      vars.ring_extra[static_cast<std::size_t>(cap)] = model_.add_variable(
          milp::VarKind::Continuous, 0.0, 1.0, 0.0,
          var_name("w", j, static_cast<int>(cap)));
    }
    for (const model::AccessoryId acc : relevant) {
      vars.accessories[acc] = model_.add_binary(0.0, var_name("d_acc", j, acc));
    }

    // (1): exactly one container — when the slot is used at all.
    model_.add_constraint({{vars.ring, 1.0}, {vars.chamber, 1.0}, {vars.used, -1.0}},
                          lp::RowSense::Equal, 0.0, var_name("cfg_container", j));
    // (2): exactly one capacity — when used.
    {
      std::vector<lp::Term> terms;
      for (const model::Capacity cap : model::kAllCapacities) {
        terms.emplace_back(vars.capacity[static_cast<std::size_t>(cap)], 1.0);
      }
      terms.emplace_back(vars.used, -1.0);
      model_.add_constraint(std::move(terms), lp::RowSense::Equal, 0.0,
                            var_name("cfg_capacity", j));
    }
    // (3) as '>=': a ring's capacity lies in {large, medium, small}
    // (equivalently, tiny implies chamber).
    model_.add_constraint(
        {{vars.capacity[static_cast<std::size_t>(model::Capacity::Large)], 1.0},
         {vars.capacity[static_cast<std::size_t>(model::Capacity::Medium)], 1.0},
         {vars.capacity[static_cast<std::size_t>(model::Capacity::Small)], 1.0},
         {vars.ring, -1.0}},
        lp::RowSense::GreaterEqual, 0.0, var_name("cfg_ring_caps", j));
    // (4) as '>=': a chamber's capacity lies in {medium, small, tiny}.
    model_.add_constraint(
        {{vars.capacity[static_cast<std::size_t>(model::Capacity::Medium)], 1.0},
         {vars.capacity[static_cast<std::size_t>(model::Capacity::Small)], 1.0},
         {vars.capacity[static_cast<std::size_t>(model::Capacity::Tiny)], 1.0},
         {vars.chamber, -1.0}},
        lp::RowSense::GreaterEqual, 0.0, var_name("cfg_chamber_caps", j));
    // Accessories only on used slots.
    for (const auto& [acc, col] : vars.accessories) {
      model_.add_constraint({{col, 1.0}, {vars.used, -1.0}}, lp::RowSense::LessEqual, 0.0,
                            var_name("cfg_acc_used", j, acc));
    }
    // w = ring AND capacity (lower-bounded product; the objective pushes w
    // down, so only the >= side is needed).
    for (const model::Capacity cap : model::kAllCapacities) {
      model_.add_constraint(
          {{vars.ring_extra[static_cast<std::size_t>(cap)], 1.0},
           {vars.ring, -1.0},
           {vars.capacity[static_cast<std::size_t>(cap)], -1.0}},
          lp::RowSense::GreaterEqual, -1.0, var_name("cfg_ring_cap_link", j,
                                                     static_cast<int>(cap)));
    }
    new_slot_vars_.push_back(vars);
  }
}

// Constraints (5)-(8).
void IlpLayerModel::add_binding_consistency() {
  const int n = static_cast<int>(inputs_.ops.size());
  int new_slot_counter = 0;
  std::vector<int> new_slot_of_device(static_cast<std::size_t>(device_count()), -1);
  for (int j = 0; j < device_count(); ++j) {
    if (device_kind_[static_cast<std::size_t>(j)] == SlotKind::New) {
      new_slot_of_device[static_cast<std::size_t>(j)] = new_slot_counter++;
    }
  }

  for (int i = 0; i < n; ++i) {
    const model::Operation& op = assay_.operation(inputs_.ops[static_cast<std::size_t>(i)]);
    // (5): bound to exactly one device.
    std::vector<lp::Term> sum;
    for (int j = 0; j < device_count(); ++j) {
      sum.emplace_back(binding_var(i, j), 1.0);
    }
    model_.add_constraint(std::move(sum), lp::RowSense::Equal, 1.0,
                          var_name("bind_once", i));

    for (int j = 0; j < device_count(); ++j) {
      const lp::Col od = binding_var(i, j);
      if (device_kind_[static_cast<std::size_t>(j)] != SlotKind::New) {
        // Fixed / hint: compatibility is a constant; forbid when violated.
        if (!model::is_compatible(op, *device_config_[static_cast<std::size_t>(j)])) {
          model_.lp().set_bounds(od, 0.0, 0.0);
        }
        continue;
      }
      const NewSlotVars& vars =
          new_slot_vars_[static_cast<std::size_t>(new_slot_of_device[static_cast<std::size_t>(j)])];
      // Binding implies the slot is used.
      model_.add_constraint({{od, 1.0}, {vars.used, -1.0}}, lp::RowSense::LessEqual, 0.0,
                            var_name("bind_used", i, j));
      // (6): container requirement.
      if (op.container().has_value()) {
        const lp::Col want =
            *op.container() == model::ContainerKind::Ring ? vars.ring : vars.chamber;
        model_.add_constraint({{want, 1.0}, {od, -1.0}}, lp::RowSense::GreaterEqual, 0.0,
                              var_name("bind_container", i, j));
      }
      // (8): capacity requirement.
      if (op.capacity().has_value()) {
        model_.add_constraint(
            {{vars.capacity[static_cast<std::size_t>(*op.capacity())], 1.0}, {od, -1.0}},
            lp::RowSense::GreaterEqual, 0.0, var_name("bind_capacity", i, j));
      }
      // (7): accessory requirements.
      for (const model::AccessoryId acc : op.accessories().to_list()) {
        model_.add_constraint({{vars.accessories.at(acc), 1.0}, {od, -1.0}},
                              lp::RowSense::GreaterEqual, 0.0,
                              var_name("bind_accessory", i, j * 100 + acc));
      }
    }

    // Recovery pins: the operation is already running on a specific fixed
    // device, so its binding row collapses to a constant. Fixing the
    // binaries outright (rather than adding rows) lets presolve drop them
    // and keeps the residual model small.
    const auto pin = inputs_.pinned.find(inputs_.ops[static_cast<std::size_t>(i)]);
    if (pin != inputs_.pinned.end()) {
      int pinned_device = -1;
      for (std::size_t f = 0; f < fixed_ids_.size(); ++f) {
        if (fixed_ids_[f] == pin->second) {
          pinned_device = static_cast<int>(f);
          break;
        }
      }
      COHLS_EXPECT(pinned_device >= 0,
                   "a pinned operation's device must be a fixed device of the layer");
      COHLS_EXPECT(
          model::is_compatible(op, *device_config_[static_cast<std::size_t>(pinned_device)]),
          "a pinned operation must be compatible with its pinned device");
      for (int j = 0; j < device_count(); ++j) {
        const double fixed = j == pinned_device ? 1.0 : 0.0;
        model_.lp().set_bounds(binding_var(i, j), fixed, fixed);
      }
    }
  }
}

// Constraint (9), with the refinement that co-located pairs pay no
// transport: st_c >= st_p + dur_p + t_e * (1 - same_pc), where same_pc is a
// linearized same-device indicator.
void IlpLayerModel::add_dependencies() {
  for (const OperationId child_id : inputs_.ops) {
    const model::Operation& child = assay_.operation(child_id);
    const int c = op_index(child_id);
    for (const OperationId parent_id : child.parents()) {
      if (in_layer_.count(parent_id)) {
        const int p = op_index(parent_id);
        COHLS_EXPECT(!assay_.operation(parent_id).indeterminate(),
                     "indeterminate operations must not have same-layer children");
        const double dur_p =
            static_cast<double>(assay_.operation(parent_id).duration().count());
        const double t = static_cast<double>(
            transport_.edge_time(parent_id, child_id).count());
        if (t == 0.0) {
          model_.add_constraint({{start_var(c), 1.0}, {start_var(p), -1.0}},
                                lp::RowSense::GreaterEqual, dur_p,
                                var_name("dep", p, c));
          continue;
        }
        // same = sum_j z_j with z_j <= o_d[p][j], z_j <= o_d[c][j].
        const lp::Col same = model_.add_variable(milp::VarKind::Continuous, 0.0, 1.0, 0.0,
                                                 var_name("same", p, c));
        DepVars dep{p, c, same, {}};
        std::vector<lp::Term> same_sum{{same, 1.0}};
        for (int j = 0; j < device_count(); ++j) {
          const lp::Col z = model_.add_variable(milp::VarKind::Continuous, 0.0, 1.0, 0.0,
                                                var_name("z", p * 1000 + c, j));
          model_.add_constraint({{z, 1.0}, {binding_var(p, j), -1.0}},
                                lp::RowSense::LessEqual, 0.0);
          model_.add_constraint({{z, 1.0}, {binding_var(c, j), -1.0}},
                                lp::RowSense::LessEqual, 0.0);
          same_sum.emplace_back(z, -1.0);
          dep.z.push_back(z);
        }
        dep_vars_.push_back(std::move(dep));
        model_.add_constraint(std::move(same_sum), lp::RowSense::LessEqual, 0.0,
                              var_name("same_def", p, c));
        // st_c - st_p - t*same >= dur_p + t ... rearranged:
        model_.add_constraint(
            {{start_var(c), 1.0}, {start_var(p), -1.0}, {same, -t}},
            lp::RowSense::GreaterEqual, dur_p + t, var_name("dep", p, c));
      } else {
        // Cross-layer parent: the inherited reagent must arrive first.
        const double t = static_cast<double>(
            transport_.edge_time(parent_id, child_id).count());
        if (t == 0.0) {
          continue;
        }
        const auto prior = inputs_.prior_binding.find(parent_id);
        int parent_device = -1;
        if (prior != inputs_.prior_binding.end()) {
          for (std::size_t f = 0; f < fixed_ids_.size(); ++f) {
            if (fixed_ids_[f] == prior->second) {
              parent_device = static_cast<int>(f);
              break;
            }
          }
        }
        if (parent_device >= 0) {
          // st_c >= t * (1 - o_d[c][parent_device])
          model_.add_constraint(
              {{start_var(c), 1.0}, {binding_var(c, parent_device), t}},
              lp::RowSense::GreaterEqual, t, var_name("dep_cross", c, parent_device));
        } else {
          model_.add_constraint({{start_var(c), 1.0}}, lp::RowSense::GreaterEqual, t,
                                var_name("dep_cross", c));
        }
      }
    }
  }
}

// Constraints (10)-(13). Occupation of an operation includes its
// conservative outgoing-transport reserve, matching the heuristic engine.
// Two tightenings over the paper's literal formulation: the big-M constants
// are per-pair (from the start windows, not the global horizon), and q
// binaries the dependency structure or the windows already decide are fixed
// outright — both shrink the LP-relaxation gap that made the root bound
// near-useless on the Table-2 layer instances.
void IlpLayerModel::add_conflicts() {
  const int n = static_cast<int>(inputs_.ops.size());
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const OperationId id_a = inputs_.ops[static_cast<std::size_t>(a)];
      const OperationId id_b = inputs_.ops[static_cast<std::size_t>(b)];
      const double dur_a = static_cast<double>(assay_.operation(id_a).duration().count());
      const double dur_b = static_cast<double>(assay_.operation(id_b).duration().count());
      const double occ_a = occupation(a);
      const double occ_b = occupation(b);
      const double est_a = est_[static_cast<std::size_t>(a)];
      const double est_b = est_[static_cast<std::size_t>(b)];
      const double lst_a = lst_[static_cast<std::size_t>(a)];
      const double lst_b = lst_[static_cast<std::size_t>(b)];
      const lp::Col q0 = model_.add_binary(0.0, var_name("q0", a, b));
      const lp::Col q1 = model_.add_binary(0.0, var_name("q1", a, b));
      const lp::Col q2 = model_.add_binary(0.0, var_name("q2", a, b));
      // (10): q0 = 0 forces a to start after b's occupation ends. At q0 = 1
      // the row must hold for every feasible start pair, which needs exactly
      // M0 >= occ_b + lst_b - est_a.
      const double m0 = std::max(0.0, occ_b + lst_b - est_a);
      model_.add_constraint({{start_var(a), 1.0}, {q0, m0}, {start_var(b), -1.0}},
                            lp::RowSense::GreaterEqual, occ_b, var_name("cfl10", a, b));
      // (11): q1 = 0 forces a's occupation to end before b starts; vacuity
      // at q1 = 1 needs M1 >= occ_a + lst_a - est_b.
      const double m1 = std::max(0.0, occ_a + lst_a - est_b);
      model_.add_constraint({{start_var(a), 1.0}, {q1, -m1}, {start_var(b), -1.0}},
                            lp::RowSense::LessEqual, -occ_a, var_name("cfl11", a, b));
      // (12): q2 = 0 forces distinct devices.
      for (int j = 0; j < device_count(); ++j) {
        model_.add_constraint(
            {{binding_var(a, j), 1.0}, {binding_var(b, j), 1.0}, {q2, -1.0}},
            lp::RowSense::LessEqual, 1.0, var_name("cfl12", a * 1000 + b, j));
      }
      // (13): at least one of the three must be zero.
      model_.add_constraint({{q0, 1.0}, {q1, 1.0}, {q2, 1.0}}, lp::RowSense::LessEqual,
                            2.0, var_name("cfl13", a, b));

      // Structural fixings: "a after b" is impossible when a precedes b or
      // the windows leave no room for it, so q0 = 1 — symmetrically for q1.
      // When both orders are impossible the occupations always overlap and
      // (13) forces distinct devices: q2 = 0.
      const bool a_after_b_impossible =
          (precedes(a, b) && dur_a + occ_b > 0.0) || lst_a < est_b + occ_b - 1e-9;
      const bool a_before_b_impossible =
          (precedes(b, a) && dur_b + occ_a > 0.0) || lst_b < est_a + occ_a - 1e-9;
      if (a_after_b_impossible) {
        model_.lp().set_bounds(q0, 1.0, 1.0);
      }
      if (a_before_b_impossible) {
        model_.lp().set_bounds(q1, 1.0, 1.0);
      }
      if (a_after_b_impossible && a_before_b_impossible) {
        model_.lp().set_bounds(q2, 0.0, 0.0);
      }
      conflict_vars_.emplace(std::make_pair(a, b), std::array<lp::Col, 3>{q0, q1, q2});
    }
  }
}

// LP-strengthening cuts the disjunction alone cannot express:
//   - clique cuts: operations whose windows force pairwise overlap must sit
//     on pairwise-distinct devices; for a clique of three or more, the sum
//     of their binding binaries per device is at most one (the pairwise (12)
//     rows only give fractional strength 1/2 each);
//   - device-capacity cuts: occupations on one device are disjoint and end
//     by makespan + reserve, so their total length bounds the makespan from
//     below per device.
void IlpLayerModel::add_clique_cuts() {
  const int n = static_cast<int>(inputs_.ops.size());

  std::set<std::vector<int>> cliques;
  for (int seed = 0; seed < n; ++seed) {
    std::vector<int> members{seed};
    for (int next = 0; next < n; ++next) {
      if (next == seed) {
        continue;
      }
      const bool overlaps_all =
          std::all_of(members.begin(), members.end(), [&](int m) {
            return must_overlap(std::min(m, next), std::max(m, next));
          });
      if (overlaps_all) {
        members.push_back(next);
      }
    }
    if (members.size() >= 3) {
      std::sort(members.begin(), members.end());
      cliques.insert(std::move(members));
    }
  }
  int clique_index = 0;
  for (const std::vector<int>& clique : cliques) {
    for (int j = 0; j < device_count(); ++j) {
      std::vector<lp::Term> terms;
      for (const int i : clique) {
        terms.emplace_back(binding_var(i, j), 1.0);
      }
      model_.add_constraint(std::move(terms), lp::RowSense::LessEqual, 1.0,
                            var_name("clique", clique_index, j));
    }
    ++clique_index;
  }

  double max_reserve = 0.0;
  for (int i = 0; i < n; ++i) {
    const double dur = static_cast<double>(
        assay_.operation(inputs_.ops[static_cast<std::size_t>(i)]).duration().count());
    max_reserve = std::max(max_reserve, occupation(i) - dur);
  }
  for (int j = 0; j < device_count(); ++j) {
    std::vector<lp::Term> terms;
    for (int i = 0; i < n; ++i) {
      terms.emplace_back(binding_var(i, j), occupation(i));
    }
    terms.emplace_back(makespan_, -1.0);
    model_.add_constraint(std::move(terms), lp::RowSense::LessEqual, max_reserve,
                          var_name("devcap", j));
  }
}

// Constraint (14) plus the parallel-execution rule for indeterminate
// operations.
void IlpLayerModel::add_indeterminate_rules() {
  std::vector<int> indeterminate;
  for (const OperationId id : inputs_.ops) {
    if (assay_.operation(id).indeterminate()) {
      indeterminate.push_back(op_index(id));
    }
  }
  for (const int i : indeterminate) {
    const double min_dur = static_cast<double>(
        assay_.operation(inputs_.ops[static_cast<std::size_t>(i)]).duration().count());
    for (std::size_t a = 0; a < inputs_.ops.size(); ++a) {
      if (static_cast<int>(a) == i) {
        continue;
      }
      // st_a <= st_i + dur_i.
      model_.add_constraint(
          {{start_var(static_cast<int>(a)), 1.0}, {start_var(i), -1.0}},
          lp::RowSense::LessEqual, min_dur, var_name("ind14", static_cast<int>(a), i));
    }
  }
  // "Indeterminate operations are mapped to different devices to allow
  // parallel execution."
  if (indeterminate.size() > 1) {
    for (int j = 0; j < device_count(); ++j) {
      std::vector<lp::Term> terms;
      for (const int i : indeterminate) {
        terms.emplace_back(binding_var(i, j), 1.0);
      }
      model_.add_constraint(std::move(terms), lp::RowSense::LessEqual, 1.0,
                            var_name("ind_parallel", j));
    }
  }
}

// (15) makespan, (16)-(20) area/processing of new slots, (21) paths.
void IlpLayerModel::add_objective_sums() {
  // (15): sum_t >= st_i + dur_i for every operation.
  for (std::size_t i = 0; i < inputs_.ops.size(); ++i) {
    const double dur =
        static_cast<double>(assay_.operation(inputs_.ops[i]).duration().count());
    model_.add_constraint({{makespan_, 1.0}, {start_var(static_cast<int>(i)), -1.0}},
                          lp::RowSense::GreaterEqual, dur,
                          var_name("mk", static_cast<int>(i)));
  }

  // (16)-(20): configuration costs of new slots, folded into the objective
  // coefficients. area(cfg) = chamber_area(cap) + w * (ring_area - chamber),
  // likewise for container processing; accessory processing per accessory.
  int slot = 0;
  for (int j = 0; j < device_count(); ++j) {
    if (device_kind_[static_cast<std::size_t>(j)] != SlotKind::New) {
      continue;
    }
    NewSlotVars& vars = new_slot_vars_[static_cast<std::size_t>(slot++)];
    // cost_j >= C_a * area + C_pr * processing of the chosen configuration,
    // expressed through an epigraph variable with objective coefficient 1
    // (minimization pins it to the configuration cost).
    vars.cost = model_.add_variable(milp::VarKind::Continuous, 0.0,
                                    lp::kInfinity, 1.0, var_name("slotcost", j));
    std::vector<lp::Term> defn{{vars.cost, 1.0}};
    for (const model::Capacity cap : model::kAllCapacities) {
      const double chamber_part =
          costs_.weight_area() * costs_.area(model::ContainerKind::Chamber, cap) +
          costs_.weight_processing() *
              costs_.container_processing(model::ContainerKind::Chamber, cap);
      const double ring_part =
          costs_.weight_area() * costs_.area(model::ContainerKind::Ring, cap) +
          costs_.weight_processing() *
              costs_.container_processing(model::ContainerKind::Ring, cap);
      defn.emplace_back(vars.capacity[static_cast<std::size_t>(cap)], -chamber_part);
      defn.emplace_back(vars.ring_extra[static_cast<std::size_t>(cap)],
                        -(ring_part - chamber_part));
    }
    for (const auto& [acc, col] : vars.accessories) {
      defn.emplace_back(col,
                        -costs_.weight_processing() * assay_.registry().processing_cost(acc));
    }
    model_.add_constraint(std::move(defn), lp::RowSense::GreaterEqual, 0.0,
                          var_name("slotcost_def", j));
  }

  // (21): path counting over unordered visible-device pairs. Pairs of fixed
  // devices whose path already exists cost nothing.
  const auto path_var = [this](int j1, int j2) -> lp::Col {
    const auto key = j1 < j2 ? std::make_pair(j1, j2) : std::make_pair(j2, j1);
    const auto it = path_vars_.find(key);
    if (it != path_vars_.end()) {
      return it->second;
    }
    double cost = costs_.weight_paths();
    if (device_kind_[static_cast<std::size_t>(j1)] == SlotKind::Fixed &&
        device_kind_[static_cast<std::size_t>(j2)] == SlotKind::Fixed) {
      const auto existing = schedule::make_path(fixed_ids_[static_cast<std::size_t>(j1)],
                                                fixed_ids_[static_cast<std::size_t>(j2)]);
      if (inputs_.existing_paths.count(existing)) {
        cost = 0.0;
      }
    }
    const lp::Col col = model_.add_binary(cost, var_name("p", key.first, key.second));
    path_vars_.emplace(key, col);
    return col;
  };

  for (const OperationId child_id : inputs_.ops) {
    const int c = op_index(child_id);
    for (const OperationId parent_id : assay_.operation(child_id).parents()) {
      if (in_layer_.count(parent_id)) {
        const int p = op_index(parent_id);
        for (int j1 = 0; j1 < device_count(); ++j1) {
          for (int j2 = 0; j2 < device_count(); ++j2) {
            if (j1 == j2) {
              continue;
            }
            // o_d[p][j1] + o_d[c][j2] - 1 <= p_{j1,j2}
            model_.add_constraint({{binding_var(p, j1), 1.0},
                                   {binding_var(c, j2), 1.0},
                                   {path_var(j1, j2), -1.0}},
                                  lp::RowSense::LessEqual, 1.0);
          }
        }
      } else {
        const auto prior = inputs_.prior_binding.find(parent_id);
        if (prior == inputs_.prior_binding.end()) {
          continue;
        }
        int parent_device = -1;
        for (std::size_t f = 0; f < fixed_ids_.size(); ++f) {
          if (fixed_ids_[f] == prior->second) {
            parent_device = static_cast<int>(f);
            break;
          }
        }
        if (parent_device < 0) {
          continue;
        }
        for (int j = 0; j < device_count(); ++j) {
          if (j == parent_device) {
            continue;
          }
          // Binding the child elsewhere uses (and may create) the path.
          model_.add_constraint(
              {{binding_var(c, j), 1.0}, {path_var(parent_device, j), -1.0}},
              lp::RowSense::LessEqual, 0.0);
        }
      }
    }
  }
}

double IlpLayerModel::min_new_slot_cost(const model::Operation& op) const {
  double best = std::numeric_limits<double>::infinity();
  for (const model::DeviceConfig& config : model::admissible_configs(op)) {
    best = std::min(best,
                    costs_.weight_area() * model::device_area(config, costs_) +
                        costs_.weight_processing() *
                            model::device_processing(config, costs_, assay_.registry()));
  }
  return std::isfinite(best) ? best : 0.0;
}

// Configuration-cost floors the epigraph rows (16)-(20) only enforce at
// integral configuration binaries: an operation bound to a new slot forces
// that slot's cost to at least its cheapest compatible configuration. For
// the indeterminate set the parallel-device rule admits at most one member
// per slot, so their floors sum within one row — which is what lifts the
// root LP of cost-dominated all-indeterminate layers from the critical path
// to (near-)exact. Every other operation gets a singleton floor row.
void IlpLayerModel::add_cost_floor_cuts() {
  const int n = static_cast<int>(inputs_.ops.size());
  std::vector<double> floor_cost(static_cast<std::size_t>(n), 0.0);
  std::vector<bool> indeterminate(static_cast<std::size_t>(n), false);
  bool any_indeterminate = false;
  for (int i = 0; i < n; ++i) {
    const model::Operation& op = assay_.operation(inputs_.ops[static_cast<std::size_t>(i)]);
    floor_cost[static_cast<std::size_t>(i)] = min_new_slot_cost(op);
    indeterminate[static_cast<std::size_t>(i)] = op.indeterminate();
    any_indeterminate = any_indeterminate || op.indeterminate();
  }

  int slot = 0;
  for (int j = 0; j < device_count(); ++j) {
    if (device_kind_[static_cast<std::size_t>(j)] != SlotKind::New) {
      continue;
    }
    const NewSlotVars& vars = new_slot_vars_[static_cast<std::size_t>(slot++)];
    if (any_indeterminate) {
      std::vector<lp::Term> agg{{vars.cost, 1.0}};
      for (int i = 0; i < n; ++i) {
        if (indeterminate[static_cast<std::size_t>(i)] &&
            floor_cost[static_cast<std::size_t>(i)] > 0.0) {
          agg.emplace_back(binding_var(i, j), -floor_cost[static_cast<std::size_t>(i)]);
        }
      }
      if (agg.size() > 1) {
        model_.add_constraint(std::move(agg), lp::RowSense::GreaterEqual, 0.0,
                              var_name("costfloor_ind", j));
      }
    }
    for (int i = 0; i < n; ++i) {
      if (indeterminate[static_cast<std::size_t>(i)] ||
          floor_cost[static_cast<std::size_t>(i)] <= 0.0) {
        continue;
      }
      model_.add_constraint(
          {{vars.cost, 1.0}, {binding_var(i, j), -floor_cost[static_cast<std::size_t>(i)]}},
          lp::RowSense::GreaterEqual, 0.0, var_name("costfloor", i, j));
    }
  }
}

std::shared_ptr<const milp::NodeBoundProvider> IlpLayerModel::bound_provider() const {
  if (device_count() > 64) {
    return nullptr;  // SchedulingBounds packs device sets into a 64-bit mask
  }
  milp::SchedulingBounds::Config config;
  const int n = static_cast<int>(inputs_.ops.size());
  for (int i = 0; i < n; ++i) {
    milp::SchedulingBounds::Task task;
    task.start = start_[static_cast<std::size_t>(i)];
    task.occupation = occupation(i);
    task.duration = static_cast<double>(
        assay_.operation(inputs_.ops[static_cast<std::size_t>(i)]).duration().count());
    task.binding = binding_[static_cast<std::size_t>(i)];
    config.tasks.push_back(std::move(task));
  }
  config.makespan = makespan_;
  config.makespan_weight = costs_.weight_time();
  for (const SlotKind kind : device_kind_) {
    (kind == SlotKind::New ? config.new_devices : config.free_devices) += 1;
  }
  if (config.new_devices > 0) {
    // The cheapest configuration any used new slot can take (accessories
    // only add cost).
    double min_cost = std::numeric_limits<double>::infinity();
    for (const model::ContainerKind container :
         {model::ContainerKind::Ring, model::ContainerKind::Chamber}) {
      for (const model::Capacity cap : model::kAllCapacities) {
        if (!model::capacity_allowed(container, cap)) {
          continue;
        }
        min_cost = std::min(
            min_cost, costs_.weight_area() * costs_.area(container, cap) +
                          costs_.weight_processing() *
                              costs_.container_processing(container, cap));
      }
    }
    config.min_new_device_cost = min_cost;
    // The slot-cost epigraph columns are the objective's payment for new
    // devices; the provider charges min_new_device_cost per used slot
    // instead, so it must not also count their box bounds.
    for (const NewSlotVars& vars : new_slot_vars_) {
      config.new_device_cols.push_back(vars.cost);
    }
  }
  // Task-level refinement: each operation's cheapest compatible new-slot
  // configuration, the indeterminate set (pairwise-distinct devices), and
  // which slots cost nothing — the provider sums the distinct tasks' floors.
  for (int i = 0; i < n; ++i) {
    const model::Operation& op = assay_.operation(inputs_.ops[static_cast<std::size_t>(i)]);
    config.task_new_cost.push_back(min_new_slot_cost(op));
    if (op.indeterminate()) {
      config.distinct_tasks.push_back(i);
    }
  }
  for (int j = 0; j < device_count(); ++j) {
    if (device_kind_[static_cast<std::size_t>(j)] != SlotKind::New) {
      config.free_slot_mask |= milp::DeviceMask{1} << j;
    }
  }
  config.objective.resize(static_cast<std::size_t>(model_.variable_count()));
  for (lp::Col c = 0; c < model_.variable_count(); ++c) {
    config.objective[static_cast<std::size_t>(c)] = model_.lp().objective_coefficient(c);
  }
  return std::make_shared<milp::SchedulingBounds>(std::move(config));
}

std::vector<double> IlpLayerModel::encode(const schedule::LayerResult& result,
                                          const model::DeviceInventory& inventory) const {
  const int n = static_cast<int>(inputs_.ops.size());
  if (static_cast<int>(result.schedule.items.size()) != n) {
    return {};
  }
  std::vector<double> x(static_cast<std::size_t>(model_.variable_count()), 0.0);

  // Map every scheduled device id onto a visible slot: fixed devices by id,
  // heuristic-instantiated devices onto a hint slot with the identical
  // configuration first (the model charges those nothing, like the
  // heuristic's hint accounting), then onto a free new slot.
  std::map<DeviceId, int> slot_of;
  std::map<int, model::DeviceConfig> slot_config;
  for (std::size_t f = 0; f < fixed_ids_.size(); ++f) {
    slot_of[fixed_ids_[f]] = static_cast<int>(f);
  }
  std::vector<bool> taken(static_cast<std::size_t>(device_count()), false);
  for (const auto& item : result.schedule.items) {
    if (slot_of.count(item.device)) {
      continue;
    }
    const model::DeviceConfig config = inventory.device(item.device).config;
    int chosen = -1;
    for (int j = 0; j < device_count() && chosen < 0; ++j) {
      if (device_kind_[static_cast<std::size_t>(j)] == SlotKind::Hint &&
          !taken[static_cast<std::size_t>(j)] &&
          *device_config_[static_cast<std::size_t>(j)] == config) {
        chosen = j;
      }
    }
    for (int j = 0; j < device_count() && chosen < 0; ++j) {
      if (device_kind_[static_cast<std::size_t>(j)] == SlotKind::New &&
          !taken[static_cast<std::size_t>(j)]) {
        chosen = j;
      }
    }
    if (chosen < 0) {
      return {};  // more heuristic devices than the model has slots
    }
    taken[static_cast<std::size_t>(chosen)] = true;
    slot_of[item.device] = chosen;
    slot_config.emplace(chosen, config);
  }

  // Bindings, starts, makespan.
  std::vector<int> device_of(static_cast<std::size_t>(n), -1);
  double makespan = 0.0;
  for (const auto& item : result.schedule.items) {
    const int i = op_index(item.op);
    const int j = slot_of.at(item.device);
    device_of[static_cast<std::size_t>(i)] = j;
    x[static_cast<std::size_t>(binding_var(i, j))] = 1.0;
    x[static_cast<std::size_t>(start_var(i))] = static_cast<double>(item.start.count());
    makespan = std::max(makespan,
                        static_cast<double>((item.start + item.duration).count()));
  }
  if (makespan > horizon_ + 1e-9) {
    return {};
  }
  x[static_cast<std::size_t>(makespan_)] = makespan;

  // Configuration variables of the new slots actually used.
  int slot = 0;
  for (int j = 0; j < device_count(); ++j) {
    if (device_kind_[static_cast<std::size_t>(j)] != SlotKind::New) {
      continue;
    }
    const NewSlotVars& vars = new_slot_vars_[static_cast<std::size_t>(slot++)];
    const auto cfg = slot_config.find(j);
    if (cfg == slot_config.end()) {
      continue;  // unused slot: all zeros
    }
    const model::DeviceConfig& config = cfg->second;
    const bool ring = config.container == model::ContainerKind::Ring;
    x[static_cast<std::size_t>(vars.used)] = 1.0;
    x[static_cast<std::size_t>(ring ? vars.ring : vars.chamber)] = 1.0;
    x[static_cast<std::size_t>(vars.capacity[static_cast<std::size_t>(config.capacity)])] =
        1.0;
    if (ring) {
      x[static_cast<std::size_t>(
          vars.ring_extra[static_cast<std::size_t>(config.capacity)])] = 1.0;
    }
    double cost =
        costs_.weight_area() * costs_.area(config.container, config.capacity) +
        costs_.weight_processing() *
            costs_.container_processing(config.container, config.capacity);
    // Accessories outside the model's relevant set only add cost; dropping
    // them keeps the point feasible (no operation requires them).
    for (const auto& [acc, col] : vars.accessories) {
      if (config.accessories.contains(acc)) {
        x[static_cast<std::size_t>(col)] = 1.0;
        cost += costs_.weight_processing() * assay_.registry().processing_cost(acc);
      }
    }
    x[static_cast<std::size_t>(vars.cost)] = cost;
  }

  // Same-device linearizations of transported dependencies. The z / same
  // columns are only bounded from ABOVE (z <= o_p, z <= o_c, same <= sum z)
  // and the dep rows charge the transport term regardless of co-location
  // (the occupation reserve spans the outgoing transport, so a realized
  // schedule never starts a same-device child earlier than st_p + dur_p + t
  // either). Zero is therefore always feasible, while sum_j min(o_p, o_c)
  // can overshoot a dep row at the realized start times.
  for (const DepVars& dep : dep_vars_) {
    for (int j = 0; j < device_count(); ++j) {
      x[static_cast<std::size_t>(dep.z[static_cast<std::size_t>(j)])] = 0.0;
    }
    x[static_cast<std::size_t>(dep.same)] = 0.0;
  }

  // Conflict disjunction binaries from the realized schedule.
  for (const auto& [pair, q] : conflict_vars_) {
    const int a = pair.first;
    const int b = pair.second;
    const double st_a = x[static_cast<std::size_t>(start_var(a))];
    const double st_b = x[static_cast<std::size_t>(start_var(b))];
    const double q0 = st_a - st_b >= occupation(b) - 1e-9 ? 0.0 : 1.0;
    const double q1 = st_b - st_a >= occupation(a) - 1e-9 ? 0.0 : 1.0;
    const double q2 = device_of[static_cast<std::size_t>(a)] ==
                              device_of[static_cast<std::size_t>(b)]
                          ? 1.0
                          : 0.0;
    if (q0 + q1 + q2 > 2.5) {
      return {};  // occupations overlap on one device; not encodable
    }
    x[static_cast<std::size_t>(q[0])] = q0;
    x[static_cast<std::size_t>(q[1])] = q1;
    x[static_cast<std::size_t>(q[2])] = q2;
  }

  // Paths the realized binding uses.
  const auto use_path = [&](int j1, int j2) {
    const auto key = j1 < j2 ? std::make_pair(j1, j2) : std::make_pair(j2, j1);
    const auto it = path_vars_.find(key);
    if (it != path_vars_.end()) {
      x[static_cast<std::size_t>(it->second)] = 1.0;
    }
  };
  for (const OperationId child_id : inputs_.ops) {
    const int c = op_index(child_id);
    for (const OperationId parent_id : assay_.operation(child_id).parents()) {
      if (in_layer_.count(parent_id)) {
        const int p = op_index(parent_id);
        if (device_of[static_cast<std::size_t>(p)] != device_of[static_cast<std::size_t>(c)]) {
          use_path(device_of[static_cast<std::size_t>(p)],
                   device_of[static_cast<std::size_t>(c)]);
        }
      } else {
        const auto prior = inputs_.prior_binding.find(parent_id);
        if (prior == inputs_.prior_binding.end()) {
          continue;
        }
        const auto parent_slot = slot_of.find(prior->second);
        if (parent_slot != slot_of.end() &&
            parent_slot->second != device_of[static_cast<std::size_t>(c)]) {
          use_path(parent_slot->second, device_of[static_cast<std::size_t>(c)]);
        }
      }
    }
  }
  return x;
}

schedule::LayerResult IlpLayerModel::decode(const std::vector<double>& solution,
                                            model::DeviceInventory& inventory) const {
  COHLS_EXPECT(static_cast<int>(solution.size()) == model_.variable_count(),
               "solution arity must match the model");
  schedule::LayerResult result;
  result.schedule.layer = inputs_.layer;

  const auto value = [&solution](lp::Col col) {
    return solution[static_cast<std::size_t>(col)];
  };
  const auto chosen = [&](int i, int j) { return value(binding_var(i, j)) > 0.5; };

  // Which non-fixed devices are actually used?
  std::vector<DeviceId> realized(static_cast<std::size_t>(device_count()));
  for (std::size_t f = 0; f < fixed_ids_.size(); ++f) {
    realized[f] = fixed_ids_[f];
  }
  int slot = 0;
  for (int j = 0; j < device_count(); ++j) {
    const SlotKind kind = device_kind_[static_cast<std::size_t>(j)];
    if (kind == SlotKind::Fixed) {
      continue;
    }
    bool used = false;
    for (std::size_t i = 0; i < inputs_.ops.size(); ++i) {
      if (chosen(static_cast<int>(i), j)) {
        used = true;
        break;
      }
    }
    if (kind == SlotKind::New) {
      if (used) {
        const NewSlotVars& vars = new_slot_vars_[static_cast<std::size_t>(slot)];
        model::DeviceConfig config;
        config.container = value(vars.ring) > 0.5 ? model::ContainerKind::Ring
                                                  : model::ContainerKind::Chamber;
        for (const model::Capacity cap : model::kAllCapacities) {
          if (value(vars.capacity[static_cast<std::size_t>(cap)]) > 0.5) {
            config.capacity = cap;
          }
        }
        for (const auto& [acc, col] : vars.accessories) {
          if (value(col) > 0.5) {
            config.accessories.insert(acc);
          }
        }
        realized[static_cast<std::size_t>(j)] = inventory.instantiate(config, inputs_.layer);
      }
      ++slot;
    } else if (used) {  // hint
      const std::size_t hint_index = static_cast<std::size_t>(j) - fixed_ids_.size();
      realized[static_cast<std::size_t>(j)] =
          inventory.instantiate(inputs_.hints[hint_index].config, inputs_.layer);
      result.consumed_hints.push_back(inputs_.hints[hint_index].key);
    }
  }

  for (std::size_t i = 0; i < inputs_.ops.size(); ++i) {
    const OperationId id = inputs_.ops[i];
    int device = -1;
    for (int j = 0; j < device_count(); ++j) {
      if (chosen(static_cast<int>(i), j)) {
        device = j;
        break;
      }
    }
    COHLS_ASSERT(device >= 0, "decoded solution leaves an operation unbound");
    const Minutes start{static_cast<std::int64_t>(
        std::llround(value(start_var(static_cast<int>(i)))))};
    result.schedule.items.push_back(
        schedule::ScheduledOperation{id, realized[static_cast<std::size_t>(device)], start,
                                     assay_.operation(id).duration(), Minutes{0}});
  }

  // Reporting: actual outgoing transport per item, given the final binding.
  for (auto& item : result.schedule.items) {
    Minutes actual{0};
    for (const OperationId child : assay_.children(item.op)) {
      const auto* child_item = result.schedule.find(child);
      if (child_item != nullptr && child_item->device != item.device) {
        actual = std::max(actual, transport_.edge_time(item.op, child));
      }
    }
    item.transport = actual;
  }
  return result;
}

}  // namespace cohls::core
