#include "core/layering.hpp"

#include <algorithm>
#include <map>

#include "graph/max_flow.hpp"
#include "graph/traversal.hpp"

namespace cohls::core {

LayerPlan::LayerPlan(std::vector<std::vector<OperationId>> layers)
    : layers_(std::move(layers)) {
  int max_id = -1;
  for (const auto& layer : layers_) {
    for (const OperationId op : layer) {
      max_id = std::max(max_id, op.value());
    }
  }
  layer_of_.assign(static_cast<std::size_t>(max_id + 1), -1);
  for (int li = 0; li < layer_count(); ++li) {
    for (const OperationId op : layers_[static_cast<std::size_t>(li)]) {
      COHLS_EXPECT(layer_of_[op.index()] == -1, "operation assigned to two layers");
      layer_of_[op.index()] = li;
    }
  }
}

const std::vector<OperationId>& LayerPlan::layer(int index) const {
  COHLS_EXPECT(index >= 0 && index < layer_count(), "layer index out of range");
  return layers_[static_cast<std::size_t>(index)];
}

int LayerPlan::layer_of(OperationId op) const {
  if (!op.valid() || op.index() >= layer_of_.size()) {
    return -1;
  }
  return layer_of_[op.index()];
}

namespace {

using Mask = std::vector<char>;

Mask make_mask(int n) { return Mask(static_cast<std::size_t>(n), 0); }

}  // namespace

EvictionCost eviction_cost(const model::Assay& assay,
                           const std::vector<OperationId>& layer_ops, OperationId op) {
  COHLS_EXPECT(std::find(layer_ops.begin(), layer_ops.end(), op) != layer_ops.end(),
               "operation to evict must be in the layer");
  const graph::Digraph& g = assay.dependency_graph();
  Mask in_layer = make_mask(assay.operation_count());
  for (const OperationId o : layer_ops) {
    in_layer[o.index()] = 1;
  }

  // The ancestor cone of `op` inside the layer.
  const auto anc = graph::ancestor_mask(g, op.index());
  std::vector<OperationId> cone;
  for (const OperationId o : layer_ops) {
    if (anc[o.index()]) {
      cone.push_back(o);
    }
  }

  // Flow network: node 0 = virtual source o_jv (lives in L_{i-1}); nodes
  // 1..k = cone vertices; node k+1 = op (the sink).
  graph::FlowNetwork net(cone.size() + 2);
  std::map<OperationId, std::size_t> index;
  for (std::size_t i = 0; i < cone.size(); ++i) {
    index[cone[i]] = i + 1;
  }
  const std::size_t source = 0;
  const std::size_t sink = cone.size() + 1;
  index[op] = sink;

  for (const OperationId o : cone) {
    // Reagents entering the cone from outside the layer (earlier layers or
    // primary inputs) flow out of the virtual source. One unit per
    // external parent; primary inputs count one unit total.
    std::int64_t external = 0;
    for (const OperationId parent : assay.operation(o).parents()) {
      if (!in_layer[parent.index()] || !anc[parent.index()]) {
        ++external;
      }
    }
    if (assay.operation(o).parents().empty()) {
      external = 1;
    }
    if (external > 0) {
      net.add_arc(source, index.at(o), external);
    }
  }
  // Direct external parents of `op` itself.
  {
    std::int64_t external = 0;
    for (const OperationId parent : assay.operation(op).parents()) {
      if (!in_layer[parent.index()] || !anc[parent.index()]) {
        ++external;
      }
    }
    if (assay.operation(op).parents().empty()) {
      external = 1;
    }
    if (external > 0) {
      net.add_arc(source, sink, external);
    }
  }
  // Dependency edges inside the cone (each crossing edge is one stored
  // intermediate).
  for (const OperationId o : cone) {
    for (const auto succ : g.successors(o.index())) {
      const OperationId child{static_cast<std::int32_t>(succ)};
      const auto it = index.find(child);
      if (it != index.end()) {
        net.add_arc(index.at(o), it->second, 1);
      }
    }
  }

  const auto cut = net.min_cut(source, sink);
  EvictionCost cost;
  cost.storage = cut.value;
  // Fewest vertices on the sink side: take the sink-closest minimum cut.
  for (const OperationId o : cone) {
    if (cut.sink_side[index.at(o)]) {
      cost.moved.push_back(o);
    }
  }
  cost.moved.push_back(op);
  return cost;
}

namespace {

class LayeringRun {
 public:
  LayeringRun(const model::Assay& assay, const LayeringOptions& options)
      : assay_(assay), options_(options), rng_(options.seed) {
    COHLS_EXPECT(options.indeterminate_threshold >= 1,
                 "the layer threshold must allow at least one indeterminate operation");
  }

  LayerPlan run() {
    Mask remaining = make_mask(assay_.operation_count());
    for (const model::Operation& op : assay_.operations()) {
      remaining[op.id().index()] = 1;
    }
    int remaining_count = assay_.operation_count();

    std::vector<std::vector<OperationId>> layers;
    while (remaining_count > 0) {
      std::vector<OperationId> layer = dependency_phase(remaining);
      resource_phase(layer);
      COHLS_ASSERT(!layer.empty(), "a layering round must place at least one operation");
      for (const OperationId op : layer) {
        remaining[op.index()] = 0;
      }
      remaining_count -= static_cast<int>(layer.size());
      std::sort(layer.begin(), layer.end());
      layers.push_back(std::move(layer));
    }
    return LayerPlan(std::move(layers));
  }

 private:
  /// Phase 1: modified maximum-independent-set sweep (L12-L24, Fig. 4).
  std::vector<OperationId> dependency_phase(const Mask& remaining) const {
    const graph::Digraph& g = assay_.dependency_graph();
    Mask active = remaining;  // the working graph 𝓛
    std::vector<OperationId> chosen_indeterminate;

    while (true) {
      // Indeterminate ops in the working graph with no indeterminate
      // ancestor in the working graph.
      std::vector<OperationId> eligible;
      for (const model::Operation& op : assay_.operations()) {
        if (!active[op.id().index()] || !op.indeterminate()) {
          continue;
        }
        const auto anc = graph::ancestor_mask(g, op.id().index());
        bool has_ind_ancestor = false;
        for (const model::Operation& other : assay_.operations()) {
          if (other.indeterminate() && active[other.id().index()] &&
              anc[other.id().index()]) {
            has_ind_ancestor = true;
            break;
          }
        }
        if (!has_ind_ancestor) {
          eligible.push_back(op.id());
        }
      }
      if (eligible.empty()) {
        break;
      }
      const OperationId pick =
          eligible[static_cast<std::size_t>(rng_.uniform_int(
              0, static_cast<std::int64_t>(eligible.size()) - 1))];
      chosen_indeterminate.push_back(pick);
      active[pick.index()] = 0;
      const auto desc = graph::descendant_mask(g, pick.index());
      for (std::size_t n = 0; n < desc.size(); ++n) {
        if (desc[n]) {
          active[n] = 0;  // descendants go to later layers
        }
      }
    }

    std::vector<OperationId> layer = chosen_indeterminate;
    for (const model::Operation& op : assay_.operations()) {
      if (active[op.id().index()]) {
        layer.push_back(op.id());
      }
    }
    return layer;
  }

  /// Phase 2: evict the cheapest indeterminate operations until the layer
  /// respects the threshold (L25-L34, Fig. 5).
  void resource_phase(std::vector<OperationId>& layer) const {
    while (count_indeterminate(layer) > options_.indeterminate_threshold) {
      OperationId victim;
      EvictionCost victim_cost;
      bool have = false;
      for (const OperationId op : layer) {
        if (!assay_.operation(op).indeterminate()) {
          continue;
        }
        EvictionCost cost = eviction_cost(assay_, layer, op);
        const bool better =
            !have || cost.storage < victim_cost.storage ||
            (cost.storage == victim_cost.storage &&
             (cost.moved.size() < victim_cost.moved.size() ||
              (cost.moved.size() == victim_cost.moved.size() && op < victim)));
        if (better) {
          victim = op;
          victim_cost = std::move(cost);
          have = true;
        }
      }
      COHLS_ASSERT(have, "threshold exceeded but no indeterminate op found");

      // Remove the cut's sink side plus, for dependency consistency, every
      // in-layer descendant of a removed operation.
      Mask removed = make_mask(assay_.operation_count());
      for (const OperationId op : victim_cost.moved) {
        removed[op.index()] = 1;
      }
      const graph::Digraph& g = assay_.dependency_graph();
      for (const OperationId op : victim_cost.moved) {
        const auto desc = graph::descendant_mask(g, op.index());
        for (const OperationId other : layer) {
          if (desc[other.index()]) {
            removed[other.index()] = 1;
          }
        }
      }
      std::erase_if(layer, [&](OperationId op) { return removed[op.index()] == 1; });
      COHLS_ASSERT(!layer.empty(),
                   "eviction emptied the layer; threshold too small for this assay");
    }
  }

  int count_indeterminate(const std::vector<OperationId>& layer) const {
    return static_cast<int>(
        std::count_if(layer.begin(), layer.end(), [&](OperationId op) {
          return assay_.operation(op).indeterminate();
        }));
  }

  const model::Assay& assay_;
  const LayeringOptions& options_;
  mutable Rng rng_;
};

}  // namespace

LayerPlan layer_assay(const model::Assay& assay, const LayeringOptions& options) {
  COHLS_EXPECT(assay.operation_count() > 0, "cannot layer an empty assay");
  LayeringRun run(assay, options);
  return run.run();
}

std::vector<int> boundary_storage(const LayerPlan& plan, const model::Assay& assay) {
  if (plan.layer_count() <= 1) {
    return {};
  }
  std::vector<int> storage(static_cast<std::size_t>(plan.layer_count() - 1), 0);
  for (const model::Operation& op : assay.operations()) {
    const int producer = plan.layer_of(op.id());
    for (const OperationId child : assay.children(op.id())) {
      const int consumer = plan.layer_of(child);
      // The intermediate is alive across every boundary between its
      // producer's layer and its consumer's.
      for (int boundary = producer; boundary < consumer; ++boundary) {
        ++storage[static_cast<std::size_t>(boundary)];
      }
    }
  }
  return storage;
}

std::vector<std::string> validate_layering(const LayerPlan& plan, const model::Assay& assay,
                                           int indeterminate_threshold) {
  std::vector<std::string> violations;
  const graph::Digraph& g = assay.dependency_graph();

  // Exactly-once coverage.
  std::vector<int> seen(static_cast<std::size_t>(assay.operation_count()), 0);
  for (const auto& layer : plan.layers()) {
    for (const OperationId op : layer) {
      if (!op.valid() || op.value() >= assay.operation_count()) {
        violations.push_back("plan references an unknown operation");
        continue;
      }
      ++seen[op.index()];
    }
  }
  for (const model::Operation& op : assay.operations()) {
    if (seen[op.id().index()] != 1) {
      violations.push_back("operation '" + op.name() + "' appears " +
                           std::to_string(seen[op.id().index()]) + " times in the plan");
    }
  }
  if (!violations.empty()) {
    return violations;
  }

  // Dependencies respect layer order; indeterminate descendants are strict.
  for (const model::Operation& op : assay.operations()) {
    const int child_layer = plan.layer_of(op.id());
    for (const OperationId parent : op.parents()) {
      const int parent_layer = plan.layer_of(parent);
      if (parent_layer > child_layer) {
        violations.push_back("operation '" + op.name() + "' precedes its parent's layer");
      }
      if (assay.operation(parent).indeterminate() && parent_layer >= child_layer) {
        violations.push_back("child of indeterminate '" + assay.operation(parent).name() +
                             "' must sit in a strictly later layer");
      }
    }
    // Also strict for transitive descendants of indeterminate operations.
    if (op.indeterminate()) {
      const auto desc = graph::descendant_mask(g, op.id().index());
      for (const model::Operation& other : assay.operations()) {
        if (desc[other.id().index()] &&
            plan.layer_of(other.id()) <= plan.layer_of(op.id())) {
          violations.push_back("descendant '" + other.name() + "' of indeterminate '" +
                               op.name() + "' is not in a later layer");
        }
      }
    }
  }

  // Threshold and at-least-one-indeterminate-per-non-final-layer.
  for (int li = 0; li < plan.layer_count(); ++li) {
    int indeterminate = 0;
    for (const OperationId op : plan.layer(li)) {
      if (assay.operation(op).indeterminate()) {
        ++indeterminate;
      }
    }
    if (indeterminate > indeterminate_threshold) {
      violations.push_back("layer " + std::to_string(li) + " holds " +
                           std::to_string(indeterminate) +
                           " indeterminate operations, above the threshold");
    }
    if (li + 1 < plan.layer_count() && indeterminate == 0) {
      violations.push_back("non-final layer " + std::to_string(li) +
                           " has no indeterminate operation");
    }
  }
  return violations;
}

}  // namespace cohls::core
