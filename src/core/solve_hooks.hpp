// Hook points the concurrent batch engine (src/engine) plugs into the
// synthesis flow. They live in core so the flow stays free of engine
// dependencies: run_pass consults an optional LayerSolveCache before
// invoking the per-layer solver, and reports every layer solve to an
// optional SolveObserver. Both interfaces must be thread-safe when shared
// across concurrent syntheses — core calls them without locking.
#pragma once

#include <optional>

#include "core/layer_synthesizer.hpp"

namespace cohls::core {

/// Everything synthesize_layer reads, bundled so cache implementations can
/// derive a complete solution signature from one place.
struct LayerSolveContext {
  const schedule::LayerRequest& request;
  const model::Assay& assay;
  const schedule::TransportPlan& transport;
  const model::CostModel& costs;
  const EngineOptions& engine;
  const model::DeviceInventory& inventory;
};

/// Memoization of per-layer solves. `lookup` returns a LayerOutcome
/// equivalent to what synthesize_layer would produce for the context (with
/// the outcome's inventory already extended by any devices the cached
/// solution instantiates), or nullopt on a miss. Implementations decide
/// which contexts are cacheable; returning nullopt is always sound.
class LayerSolveCache {
 public:
  virtual ~LayerSolveCache() = default;
  [[nodiscard]] virtual std::optional<LayerOutcome> lookup(
      const LayerSolveContext& context) = 0;
  virtual void store(const LayerSolveContext& context, const LayerOutcome& outcome) = 0;
};

/// One per-layer solve, as seen by run_pass.
struct LayerSolveEvent {
  int operation_count = 0;
  bool cache_hit = false;
  bool used_ilp = false;
  /// Branch-and-bound nodes spent (0 for heuristic-only and cached solves).
  long milp_nodes = 0;
  /// LP work inside the MILP solve (0 for heuristic-only and cached solves).
  long lp_pivots = 0;
  long lp_warm_solves = 0;
  long lp_cold_solves = 0;
  long lp_refactorizations = 0;
  /// Parallel MILP search summary (defaults for sequential, heuristic-only
  /// and cached solves); see LayerOutcome for field meanings.
  int milp_threads = 1;
  long milp_steals = 0;
  long milp_incumbent_updates = 0;
  long milp_incumbent_races = 0;
  double milp_idle_seconds = 0.0;
  /// Bound-driven search summary (see LayerOutcome).
  long milp_bound_prunes = 0;
  long milp_cutoff_prunes = 0;
  long milp_dive_lp_solves = 0;
  bool milp_dive_found_incumbent = false;
  /// Wall time of the solve (or of the cache lookup, when it hit).
  double seconds = 0.0;
};

/// Metrics sink; the engine adapts this onto its MetricsRegistry.
class SolveObserver {
 public:
  virtual ~SolveObserver() = default;
  virtual void on_layer_solve(const LayerSolveEvent& event) = 0;
};

}  // namespace cohls::core
