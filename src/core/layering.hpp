// Layering for hybrid-scheduling (Sec. 3.1, Algorithm 1). An assay with
// indeterminate operations is split into sequential layers; every layer
// (except possibly the last) ends with up to `t` indeterminate operations,
// so cyberphysical termination control is only needed at layer boundaries.
//
// Phase 1 — dependency-based allocation: a modified maximum-independent-set
// sweep keeps every indeterminate operation with no indeterminate ancestor
// and pushes its descendants to later layers.
// Phase 2 — resource-based allocation: while a layer holds more than `t`
// indeterminate operations, evict the one whose removal is cheapest, where
// the cost is a minimum cut over the operation's ancestor cone (crossing
// edges = intermediates that must be stored), tie-broken by the number of
// ancestor operations dragged along (Fig. 5).
#pragma once

#include <vector>

#include "model/assay.hpp"
#include "util/rng.hpp"

namespace cohls::core {

/// The layer partition produced by Algorithm 1.
class LayerPlan {
 public:
  explicit LayerPlan(std::vector<std::vector<OperationId>> layers);

  [[nodiscard]] int layer_count() const { return static_cast<int>(layers_.size()); }
  [[nodiscard]] const std::vector<OperationId>& layer(int index) const;
  [[nodiscard]] const std::vector<std::vector<OperationId>>& layers() const {
    return layers_;
  }

  /// Layer index of an operation; -1 if the plan does not contain it.
  [[nodiscard]] int layer_of(OperationId op) const;

 private:
  std::vector<std::vector<OperationId>> layers_;
  std::vector<int> layer_of_;
};

struct LayeringOptions {
  /// The threshold `t`: maximum number of indeterminate operations per
  /// layer (they all need parallel devices at the layer's end).
  int indeterminate_threshold = 10;
  /// Seed for the random choice among eligible indeterminate operations.
  std::uint64_t seed = 1;
};

/// Runs Algorithm 1 on the assay.
[[nodiscard]] LayerPlan layer_assay(const model::Assay& assay,
                                    const LayeringOptions& options = {});

/// Checks the Algorithm-1 invariants; returns violation descriptions
/// (empty == valid):
///  - every operation appears in exactly one layer;
///  - parents never sit in later layers than their children;
///  - an indeterminate operation's descendants sit in strictly later layers;
///  - at most `t` indeterminate operations per layer;
///  - every layer except the last contains at least one indeterminate
///    operation whenever the assay has any left to place.
[[nodiscard]] std::vector<std::string> validate_layering(const LayerPlan& plan,
                                                         const model::Assay& assay,
                                                         int indeterminate_threshold);

/// Cost of evicting indeterminate operation `op` from the set `layer_ops`
/// (Fig. 5): the min-cut storage usage and the operations that move. This
/// is exposed for tests and the Fig. 5 reproduction bench.
struct EvictionCost {
  std::int64_t storage = 0;               ///< crossing edges of the min cut
  std::vector<OperationId> moved;         ///< ops leaving the layer (incl. `op`)
};

[[nodiscard]] EvictionCost eviction_cost(const model::Assay& assay,
                                         const std::vector<OperationId>& layer_ops,
                                         OperationId op);

/// Reagent storage demanded at each layer boundary: element `i` counts the
/// dependency edges whose producer sits in layers 0..i and whose consumer
/// sits later — each such intermediate must be held in storage while the
/// boundary's cyberphysical decisions run. (This is the same storage notion
/// the eviction min-cut minimizes, measured on the final plan.) Size is
/// layer_count() - 1; empty for single-layer plans.
[[nodiscard]] std::vector<int> boundary_storage(const LayerPlan& plan,
                                                const model::Assay& assay);

}  // namespace cohls::core
