#include "core/progressive_resynthesis.hpp"

#include <algorithm>

#include "core/transport_estimator.hpp"

namespace cohls::core {

namespace {

IterationRecord record_of(const schedule::SynthesisResult& result,
                          const model::Assay& assay, const model::CostModel& costs) {
  IterationRecord record;
  record.execution_time = result.total_time(assay);
  record.device_count = result.used_device_count();
  record.path_count = result.path_count(assay);
  record.objective = schedule::evaluate_objective(result, assay, costs);
  return record;
}

std::vector<KnownDevice> known_devices_of(const schedule::SynthesisResult& result) {
  std::vector<KnownDevice> known;
  for (const model::Device& device : result.devices.devices()) {
    known.push_back(KnownDevice{device.config,
                                device.created_in.valid() ? device.created_in.value() : 0});
  }
  return known;
}

}  // namespace

namespace {

SynthesisReport synthesize_single(const model::Assay& assay,
                                  const SynthesisOptions& options,
                                  const PassPolicy& policy) {
  SynthesisReport report;
  report.plan = layer_assay(assay, options.layering);

  schedule::TransportPlan transport(options.initial_transport);
  schedule::SynthesisResult current =
      run_pass(assay, report.plan, transport, options, {}, policy);
  report.iterations.push_back(record_of(current, assay, options.costs));

  report.result = current;
  report.transport = transport;
  double best_objective = report.iterations.back().objective.weighted_total;

  for (int iteration = 1; iteration <= options.max_resynthesis_iterations; ++iteration) {
    options.cancel.check("progressive re-synthesis");
    const schedule::TransportPlan refined =
        options.transport_refinement == TransportRefinement::Layout
            ? layout::transport_from_layout(
                  layout::place_devices(current, assay, options.placement), current,
                  assay, options.layout_transport)
            : refine_transport(current, assay, options.progression,
                               options.initial_transport);
    const std::vector<KnownDevice> known = known_devices_of(current);
    schedule::SynthesisResult next =
        run_pass(assay, report.plan, refined, options, known, policy);
    const IterationRecord record = record_of(next, assay, options.costs);
    report.iterations.push_back(record);

    const double previous = report.iterations[report.iterations.size() - 2]
                                .objective.weighted_total;
    const double improvement =
        previous > 0.0 ? (previous - record.objective.weighted_total) / previous : 0.0;

    if (record.objective.weighted_total < best_objective - 1e-9) {
      best_objective = record.objective.weighted_total;
      report.result = next;
      report.transport = refined;
    }
    current = std::move(next);
    transport = refined;

    if (improvement <= options.resynthesis_improvement_threshold) {
      break;  // "no further significant improvement"
    }
  }
  return report;
}

}  // namespace

SynthesisReport synthesize(const model::Assay& assay, const SynthesisOptions& options,
                           const PassPolicy& policy) {
  COHLS_EXPECT(options.restarts >= 1, "need at least one synthesis run");
  SynthesisReport best = synthesize_single(assay, options, policy);
  double best_objective =
      schedule::evaluate_objective(best.result, assay, options.costs).weighted_total;
  for (int restart = 1; restart < options.restarts; ++restart) {
    options.cancel.check("synthesis restart");
    SynthesisOptions varied = options;
    // Different tie-break seeds reshuffle the layering's random choice of
    // eligible indeterminate operations (Algorithm 1 L13).
    varied.layering.seed = options.layering.seed + static_cast<std::uint64_t>(restart);
    SynthesisReport candidate = synthesize_single(assay, varied, policy);
    const double objective =
        schedule::evaluate_objective(candidate.result, assay, options.costs)
            .weighted_total;
    if (objective < best_objective - 1e-9) {
      best_objective = objective;
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace cohls::core
