#include "core/layer_synthesizer.hpp"

#include <algorithm>

#include "milp/branch_and_bound.hpp"
#include "model/compatibility.hpp"

namespace cohls::core {

double layer_score(const schedule::LayerResult& result,
                   const model::DeviceInventory& inventory,
                   const schedule::LayerRequest& request, const model::Assay& assay,
                   const model::CostModel& costs) {
  double score =
      costs.weight_time() * static_cast<double>(result.schedule.makespan().count());

  // Integration cost of devices created by this layer, hints excluded
  // (their cost is owned by the layer that integrates them in the global
  // accounting — Fig. 6).
  for (const model::Device& device : inventory.devices()) {
    if (device.created_in != request.layer) {
      continue;
    }
    bool from_hint = false;
    for (const int key : result.consumed_hints) {
      for (const auto& hint : request.hints) {
        if (hint.key == key && hint.config == device.config) {
          from_hint = true;
          break;
        }
      }
    }
    if (from_hint) {
      continue;
    }
    score += costs.weight_area() * model::device_area(device.config, costs) +
             costs.weight_processing() *
                 model::device_processing(device.config, costs, assay.registry());
  }

  // Newly created inter-device paths.
  std::set<schedule::DevicePath> paths = request.existing_paths;
  std::map<OperationId, DeviceId> binding = request.prior_binding;
  for (const auto& item : result.schedule.items) {
    binding[item.op] = item.device;
  }
  int new_paths = 0;
  for (const auto& item : result.schedule.items) {
    for (const OperationId parent : assay.operation(item.op).parents()) {
      const auto it = binding.find(parent);
      if (it == binding.end() || it->second == item.device) {
        continue;
      }
      if (paths.insert(schedule::make_path(it->second, item.device)).second) {
        ++new_paths;
      }
    }
  }
  score += costs.weight_paths() * new_paths;
  return score;
}

namespace {

bool ilp_applicable(const schedule::LayerRequest& request, const model::Assay& assay,
                    const EngineOptions& engine,
                    const model::DeviceInventory& inventory) {
  if (!engine.enable_ilp) {
    return false;
  }
  if (static_cast<int>(request.ops.size()) > engine.ilp_max_ops) {
    return false;
  }
  const int devices = static_cast<int>(request.usable_devices.size() +
                                       request.hints.size()) +
                      engine.ilp_new_slots;
  if (devices > engine.ilp_max_devices) {
    return false;
  }
  // Recovery pins (forced bindings of in-flight operations) have an exact
  // ILP form — fixed binding rows — as long as every pinned device is among
  // the layer's usable devices and can actually run the pinned operation.
  for (const auto& [op, device] : request.pinned) {
    if (std::find(request.usable_devices.begin(), request.usable_devices.end(),
                  device) == request.usable_devices.end()) {
      return false;
    }
    if (!model::is_compatible(assay.operation(op), inventory.device(device).config)) {
      return false;
    }
  }
  // The ILP expresses the component-oriented binding rule (6)-(8); custom
  // binding predicates (the conventional baseline) have no ILP form here.
  return !request.binds && !request.new_config;
}

void copy_milp_stats(LayerOutcome& outcome, const milp::MilpSolution& solution) {
  outcome.milp_nodes = solution.nodes;
  outcome.milp_cancelled = solution.cancelled;
  outcome.lp_pivots = solution.lp_pivots;
  outcome.lp_warm_solves = solution.lp_warm_solves;
  outcome.lp_cold_solves = solution.lp_cold_solves;
  outcome.lp_refactorizations = solution.lp_refactorizations;
  outcome.milp_threads = solution.threads_used;
  outcome.milp_steals = solution.steals;
  outcome.milp_incumbent_updates = solution.incumbent_updates;
  outcome.milp_incumbent_races = solution.incumbent_races;
  outcome.milp_idle_seconds = solution.worker_idle_seconds;
  outcome.milp_bound_prunes = solution.bound_prunes;
  outcome.milp_cutoff_prunes = solution.cutoff_prunes;
  outcome.milp_dive_lp_solves = solution.dive_lp_solves;
  outcome.milp_dive_found_incumbent = solution.dive_found_incumbent;
}

}  // namespace

LayerOutcome synthesize_layer(const schedule::LayerRequest& request,
                              const model::Assay& assay,
                              const schedule::TransportPlan& transport,
                              const model::CostModel& costs, const EngineOptions& engine,
                              const model::DeviceInventory& inventory) {
  // Heuristic candidate.
  LayerOutcome heuristic;
  heuristic.inventory = inventory;
  heuristic.result = schedule_layer(request, assay, transport, costs, heuristic.inventory);
  heuristic.score = layer_score(heuristic.result, heuristic.inventory, request, assay, costs);

  if (!ilp_applicable(request, assay, engine, inventory)) {
    return heuristic;
  }

  // Exact candidate.
  IlpLayerInputs inputs;
  inputs.layer = request.layer;
  inputs.ops = request.ops;
  for (const DeviceId id : request.usable_devices) {
    inputs.fixed_devices.emplace_back(id, inventory.device(id).config);
  }
  inputs.hints = request.hints;
  inputs.new_slots =
      request.allow_new_devices
          ? std::min(engine.ilp_new_slots, inventory.max_devices() - inventory.size())
          : 0;
  inputs.prior_binding = request.prior_binding;
  inputs.existing_paths = request.existing_paths;
  inputs.pinned = request.pinned;

  try {
    const IlpLayerModel ilp(assay, std::move(inputs), transport, costs);
    milp::MilpOptions options = engine.milp;
    // Bound-driven search: combinatorial node bounds over the scheduling
    // structure, and the heuristic result as the initial incumbent every
    // worker prunes against from node 1.
    options.bounds = ilp.bound_provider();
    if (!options.warm_start.has_value()) {
      std::vector<double> seed = ilp.encode(heuristic.result, heuristic.inventory);
      if (!seed.empty()) {
        options.warm_start = std::move(seed);
      }
    }
    const auto solution = milp::solve_milp(ilp.model(), options);
    copy_milp_stats(heuristic, solution);
    if (solution.status != milp::MilpStatus::Optimal &&
        solution.status != milp::MilpStatus::Feasible) {
      return heuristic;
    }
    LayerOutcome exact;
    exact.inventory = inventory;
    exact.result = ilp.decode(solution.values, exact.inventory);
    exact.used_ilp = true;
    exact.score = layer_score(exact.result, exact.inventory, request, assay, costs);
    copy_milp_stats(exact, solution);
    return exact.score < heuristic.score - 1e-9 ? exact : heuristic;
  } catch (const InfeasibleError&) {
    return heuristic;  // e.g. inventory exhausted while decoding
  }
}

}  // namespace cohls::core
