#include "core/hybrid_synthesizer.hpp"

#include <algorithm>

namespace cohls::core {

schedule::SynthesisResult run_pass(const model::Assay& assay, const LayerPlan& plan,
                                   const schedule::TransportPlan& transport,
                                   const SynthesisOptions& options,
                                   const std::vector<KnownDevice>& known_devices,
                                   const PassPolicy& policy) {
  schedule::SynthesisResult result;
  result.devices = model::DeviceInventory(options.max_devices);

  std::map<OperationId, DeviceId> prior_binding;
  std::set<schedule::DevicePath> existing_paths;
  std::vector<bool> hint_consumed(known_devices.size(), false);

  for (int li = 0; li < plan.layer_count(); ++li) {
    schedule::LayerRequest request;
    request.layer = LayerId{li};
    request.ops = plan.layer(li);
    request.prior_binding = prior_binding;
    for (const model::Device& device : result.devices.devices()) {
      request.usable_devices.push_back(device.id);
    }
    // Hints: configurations the previous iteration's *later* layers
    // integrated (D \ D'_i), not yet re-integrated in this pass.
    for (std::size_t k = 0; k < known_devices.size(); ++k) {
      if (!hint_consumed[k] && known_devices[k].created_in_layer > li) {
        request.hints.push_back(
            schedule::DeviceHint{known_devices[k].config, static_cast<int>(k)});
      }
    }
    request.existing_paths = existing_paths;
    request.binds = policy.binds;
    request.new_config = policy.new_config;
    request.slot_size = policy.slot_size;

    LayerOutcome outcome = synthesize_layer(request, assay, transport, options.costs,
                                            options.engine, result.devices);
    result.devices = std::move(outcome.inventory);
    for (const int key : outcome.result.consumed_hints) {
      hint_consumed[static_cast<std::size_t>(key)] = true;
    }
    for (const auto& item : outcome.result.schedule.items) {
      prior_binding[item.op] = item.device;
    }
    result.layers.push_back(std::move(outcome.result.schedule));
    existing_paths = result.paths(assay);
  }
  return result;
}

}  // namespace cohls::core
