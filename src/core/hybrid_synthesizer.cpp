#include "core/hybrid_synthesizer.hpp"

#include <algorithm>
#include <chrono>

#include "core/solve_hooks.hpp"

namespace cohls::core {

namespace {

/// Solves one layer, going through the optional layer-solution cache and
/// reporting the solve to the optional observer.
LayerOutcome solve_with_hooks(const schedule::LayerRequest& request,
                              const model::Assay& assay,
                              const schedule::TransportPlan& transport,
                              const SynthesisOptions& options,
                              const model::DeviceInventory& inventory) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point begin = Clock::now();
  const LayerSolveContext context{request,       assay,          transport,
                                  options.costs, options.engine, inventory};

  LayerOutcome outcome;
  bool cache_hit = false;
  if (options.layer_cache != nullptr) {
    if (std::optional<LayerOutcome> cached = options.layer_cache->lookup(context)) {
      outcome = std::move(*cached);
      cache_hit = true;
    }
  }
  if (!cache_hit) {
    outcome = synthesize_layer(request, assay, transport, options.costs,
                               options.engine, inventory);
    // A solve truncated by cancellation would poison the cache: the next
    // identical context, uncancelled, could legitimately do better.
    if (options.layer_cache != nullptr && !outcome.milp_cancelled) {
      options.layer_cache->store(context, outcome);
    }
  }

  if (options.observer != nullptr) {
    LayerSolveEvent event;
    event.operation_count = static_cast<int>(request.ops.size());
    event.cache_hit = cache_hit;
    event.used_ilp = outcome.used_ilp;
    event.milp_nodes = cache_hit ? 0 : outcome.milp_nodes;
    if (!cache_hit) {
      event.lp_pivots = outcome.lp_pivots;
      event.lp_warm_solves = outcome.lp_warm_solves;
      event.lp_cold_solves = outcome.lp_cold_solves;
      event.lp_refactorizations = outcome.lp_refactorizations;
      event.milp_threads = outcome.milp_threads;
      event.milp_steals = outcome.milp_steals;
      event.milp_incumbent_updates = outcome.milp_incumbent_updates;
      event.milp_incumbent_races = outcome.milp_incumbent_races;
      event.milp_idle_seconds = outcome.milp_idle_seconds;
      event.milp_bound_prunes = outcome.milp_bound_prunes;
      event.milp_cutoff_prunes = outcome.milp_cutoff_prunes;
      event.milp_dive_lp_solves = outcome.milp_dive_lp_solves;
      event.milp_dive_found_incumbent = outcome.milp_dive_found_incumbent;
    }
    event.seconds = std::chrono::duration<double>(Clock::now() - begin).count();
    options.observer->on_layer_solve(event);
  }
  return outcome;
}

}  // namespace

schedule::SynthesisResult run_pass(const model::Assay& assay, const LayerPlan& plan,
                                   const schedule::TransportPlan& transport,
                                   const SynthesisOptions& options_in,
                                   const std::vector<KnownDevice>& known_devices,
                                   const PassPolicy& policy) {
  // Let branch-and-bound poll the pass-level token between nodes, unless the
  // caller already installed a solver-specific one.
  SynthesisOptions options_with_cancel;
  const SynthesisOptions* effective = &options_in;
  if (options_in.cancel.can_cancel() && !options_in.engine.milp.cancel.can_cancel()) {
    options_with_cancel = options_in;
    options_with_cancel.engine.milp.cancel = options_in.cancel;
    effective = &options_with_cancel;
  }
  const SynthesisOptions& options = *effective;

  schedule::SynthesisResult result;
  result.devices = model::DeviceInventory(options.max_devices);
  // Pre-existing hardware (recovery: the surviving chip). An invalid creation
  // layer marks the device as a sunk cost no layer pays for.
  for (const model::DeviceConfig& config : policy.initial_devices) {
    result.devices.instantiate(config, LayerId{});
  }

  std::map<OperationId, DeviceId> prior_binding;
  std::set<schedule::DevicePath> existing_paths;
  std::vector<bool> hint_consumed(known_devices.size(), false);

  for (int li = 0; li < plan.layer_count(); ++li) {
    options.cancel.check("synthesis pass");
    schedule::LayerRequest request;
    request.layer = LayerId{li};
    request.ops = plan.layer(li);
    request.prior_binding = prior_binding;
    for (const model::Device& device : result.devices.devices()) {
      request.usable_devices.push_back(device.id);
    }
    // Hints: configurations the previous iteration's *later* layers
    // integrated (D \ D'_i), not yet re-integrated in this pass.
    for (std::size_t k = 0; k < known_devices.size(); ++k) {
      if (!hint_consumed[k] && known_devices[k].created_in_layer > li) {
        request.hints.push_back(
            schedule::DeviceHint{known_devices[k].config, static_cast<int>(k)});
      }
    }
    request.existing_paths = existing_paths;
    for (const OperationId op : request.ops) {
      const auto pin = policy.pinned.find(op);
      if (pin != policy.pinned.end()) {
        request.pinned.emplace(op, pin->second);
      }
    }
    request.allow_new_devices = policy.allow_new_devices;
    request.binds = policy.binds;
    request.new_config = policy.new_config;
    request.slot_size = policy.slot_size;

    LayerOutcome outcome =
        solve_with_hooks(request, assay, transport, options, result.devices);
    result.devices = std::move(outcome.inventory);
    for (const int key : outcome.result.consumed_hints) {
      hint_consumed[static_cast<std::size_t>(key)] = true;
    }
    for (const auto& item : outcome.result.schedule.items) {
      prior_binding[item.op] = item.device;
    }
    result.layers.push_back(std::move(outcome.result.schedule));
    existing_paths = result.paths(assay);
  }
  return result;
}

}  // namespace cohls::core
