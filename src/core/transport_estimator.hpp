// Transportation-time refinement (Sec. 4.1). After a full synthesis pass,
// each dependency edge's transport time is refined to a term of the
// user-defined arithmetic progression: paths used by more transfers are
// assumed to be laid out shorter, so their transfers get smaller terms;
// same-device transfers get zero.
#pragma once

#include "model/assay.hpp"
#include "schedule/transport_plan.hpp"
#include "schedule/types.hpp"

namespace cohls::core {

/// Builds the refined plan from the latest binding solution. Edges whose
/// endpoints were co-located get 0; inter-device edges get the progression
/// term of their path's usage rank (most-used path -> minimum term). Edges
/// not bound in `result` keep the fallback constant.
[[nodiscard]] schedule::TransportPlan refine_transport(
    const schedule::SynthesisResult& result, const model::Assay& assay,
    const schedule::TransportProgression& progression, Minutes fallback);

}  // namespace cohls::core
