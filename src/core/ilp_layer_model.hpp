// The per-layer ILP of Sec. 4, built on cohls::milp. Constraints map
// one-to-one to the paper's equations:
//   (1)-(4)   device configuration of freely-configurable new slots
//             (note: the paper writes (3)-(4) with '=', which would force
//             every ring to be large and every chamber to be tiny; the
//             intended meaning per the surrounding text — "the capacity of
//             a ring may vary among large, medium and small" — requires
//             '>=', which is what we emit);
//   (5)-(8)   component-oriented binding consistency;
//   (9)       dependency with transportation time, refined so co-located
//             producer/consumer pairs pay zero transport;
//   (10)-(13) big-M device-conflict disjunction;
//   (14)      indeterminate operations close the sub-schedule;
//   (15)-(20) objective sums (makespan, area, processing);
//   (21)      transportation-path counting.
// Devices visible to the model are: fixed devices (inherited, sunk cost),
// hint slots (configs a later layer integrates anyway — Fig. 6 — so zero
// cost here), and new slots whose configuration the ILP chooses at full
// integration cost.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "milp/model.hpp"
#include "model/assay.hpp"
#include "model/cost_model.hpp"
#include "model/device.hpp"
#include "schedule/list_scheduler.hpp"
#include "schedule/transport_plan.hpp"

namespace cohls::milp {
class NodeBoundProvider;
}  // namespace cohls::milp

namespace cohls::core {

struct IlpLayerInputs {
  LayerId layer;
  std::vector<OperationId> ops;
  /// Inherited devices (id + config); binding to them costs nothing.
  std::vector<std::pair<DeviceId, model::DeviceConfig>> fixed_devices;
  /// Configurations a later layer integrates anyway (zero cost here).
  std::vector<schedule::DeviceHint> hints;
  /// Number of freely-configurable new device slots.
  int new_slots = 2;
  /// Binding of prior-layer operations (cross-layer transport and paths).
  std::map<OperationId, DeviceId> prior_binding;
  /// Paths already integrated (re-using them costs nothing).
  std::set<schedule::DevicePath> existing_paths;
  /// Operations forced onto a specific fixed device (recovery re-synthesis
  /// pins in-flight operations to the device already running them). Every
  /// pinned device must appear in `fixed_devices` and be compatible with
  /// the pinned operation; the model fixes the binding binaries outright so
  /// the residual layer solves exactly instead of falling back to the
  /// heuristic.
  std::map<OperationId, DeviceId> pinned;
};

class IlpLayerModel {
 public:
  IlpLayerModel(const model::Assay& assay, IlpLayerInputs inputs,
                const schedule::TransportPlan& transport, const model::CostModel& costs);

  [[nodiscard]] const milp::MilpModel& model() const { return model_; }

  /// Decodes a feasible MILP solution: instantiates the used hint/new
  /// devices into `inventory` and returns the layer schedule (with consumed
  /// hint keys).
  [[nodiscard]] schedule::LayerResult decode(const std::vector<double>& solution,
                                             model::DeviceInventory& inventory) const;

  /// A combinatorial node-bound provider over this model's scheduling
  /// structure (Fernandez-style device-conflict intervals plus device
  /// counting), for milp::MilpOptions::bounds. The provider holds no
  /// reference back to this object and may outlive it.
  [[nodiscard]] std::shared_ptr<const milp::NodeBoundProvider> bound_provider() const;

  /// Encodes a heuristic layer result as a full assignment of this model's
  /// variables, for milp::MilpOptions::warm_start. `inventory` must be the
  /// inventory the heuristic scheduled against (it resolves the result's
  /// device ids to configurations). Returns an empty vector when the result
  /// does not map onto the model's device slots; the caller should then
  /// simply not seed a warm start.
  [[nodiscard]] std::vector<double> encode(const schedule::LayerResult& result,
                                           const model::DeviceInventory& inventory) const;

  // --- variable accessors (exposed for white-box tests) -------------------
  [[nodiscard]] int device_count() const { return static_cast<int>(device_kind_.size()); }
  [[nodiscard]] lp::Col binding_var(int op_index, int device_index) const;
  [[nodiscard]] lp::Col start_var(int op_index) const;
  [[nodiscard]] lp::Col makespan_var() const { return makespan_; }

 private:
  enum class SlotKind { Fixed, Hint, New };

  struct NewSlotVars {
    lp::Col used;
    lp::Col ring;
    lp::Col chamber;
    std::array<lp::Col, 4> capacity;       // by model::Capacity index
    std::map<model::AccessoryId, lp::Col> accessories;
    std::array<lp::Col, 4> ring_extra;     // w: ring AND capacity products
    lp::Col cost = -1;                     // slotcost epigraph variable
  };

  /// Linearization variables of one in-layer dependency with transport.
  struct DepVars {
    int parent;
    int child;
    lp::Col same;
    std::vector<lp::Col> z;  // per device
  };

  void build();
  void add_device_configuration();      // (1)-(4)
  void add_binding_consistency();       // (5)-(8)
  void add_dependencies();              // (9)
  void add_conflicts();                 // (10)-(13), per-pair big-M
  void add_indeterminate_rules();       // (14) + parallel-device rule
  void add_objective_sums();            // (15)-(21)
  void tighten_time_windows();          // per-op [est, lst] start bounds
  void add_clique_cuts();               // must-overlap cliques + device capacity
  void add_cost_floor_cuts();           // per-op configuration cost floors

  [[nodiscard]] int op_index(OperationId id) const;
  [[nodiscard]] Minutes outgoing_reserve(OperationId id) const;
  [[nodiscard]] bool device_compatible(const model::Operation& op, int device_index) const;
  /// Cost of the cheapest new-slot configuration that can execute `op`
  /// (container/capacity/accessory requirements honoured); 0 when no
  /// configuration is compatible (the op then never binds a new slot).
  [[nodiscard]] double min_new_slot_cost(const model::Operation& op) const;
  [[nodiscard]] double occupation(int op_index) const;
  /// True when a directed in-layer dependency path leads from `a` to `b`.
  [[nodiscard]] bool precedes(int a, int b) const;
  /// True when the start windows force the two occupations to overlap in
  /// every feasible schedule (the pair can never be separated in time).
  [[nodiscard]] bool must_overlap(int a, int b) const;

  const model::Assay& assay_;
  IlpLayerInputs inputs_;
  const schedule::TransportPlan& transport_;
  const model::CostModel& costs_;

  milp::MilpModel model_;
  double horizon_ = 0.0;
  double big_m_ = 0.0;

  // Visible devices: fixed, then hints, then new slots.
  std::vector<SlotKind> device_kind_;
  std::vector<std::optional<model::DeviceConfig>> device_config_;  // nullopt for new
  std::vector<DeviceId> fixed_ids_;  // parallel to fixed prefix
  std::vector<NewSlotVars> new_slot_vars_;  // parallel to new-slot suffix

  std::vector<std::vector<lp::Col>> binding_;  // [op][device]
  std::vector<lp::Col> start_;                 // [op]
  lp::Col makespan_ = -1;
  /// Path variable per unordered pair of *visible device indexes*.
  std::map<std::pair<int, int>, lp::Col> path_vars_;
  std::map<OperationId, int> op_index_;
  std::set<OperationId> in_layer_;

  /// Tightened start windows (set by tighten_time_windows, mirrored in the
  /// start_ column bounds): est_ from longest in-layer predecessor chains
  /// and cross-layer arrivals, lst_ from successor chains against horizon_.
  std::vector<double> est_;
  std::vector<double> lst_;
  /// In-layer precedence closure: reach_[a] holds b iff a's output
  /// (transitively) feeds b within the layer.
  std::vector<std::set<int>> reach_;
  /// Conflict disjunction binaries {q0, q1, q2} per ordered pair a < b.
  std::map<std::pair<int, int>, std::array<lp::Col, 3>> conflict_vars_;
  /// Same-device linearizations of in-layer dependencies with transport.
  std::vector<DepVars> dep_vars_;
};

}  // namespace cohls::core
