// User-facing knobs of the synthesis flow, mirroring the paper's
// experimental setup: |D| (max devices), the layer threshold `t`, the
// transportation constant and progression, the cost model, and the engine
// configuration (exact MILP for small layers, heuristic beyond).
#pragma once

#include "core/layering.hpp"
#include "layout/placement.hpp"
#include "layout/transport_from_layout.hpp"
#include "milp/branch_and_bound.hpp"
#include "model/cost_model.hpp"
#include "schedule/transport_plan.hpp"
#include "util/cancellation.hpp"

namespace cohls::core {

class LayerSolveCache;  // solve_hooks.hpp
class SolveObserver;    // solve_hooks.hpp

/// How per-edge transport times are refined between re-synthesis
/// iterations (Sec. 4.1). `Progression` is the paper's method: path-usage
/// ranks map onto a user-defined arithmetic progression. `Layout`
/// additionally sketches a grid placement of the devices (usage-weighted
/// annealing) and derives times from the placed Manhattan channel lengths.
enum class TransportRefinement {
  Progression,
  Layout,
};

/// Engine selection per layer. The paper solves every layer with Gurobi;
/// our in-tree branch-and-bound is exact but slower, so layers above the
/// size thresholds fall back to the list-scheduling heuristic. Whenever the
/// MILP produces a solution, the better-scoring of the two is kept.
struct EngineOptions {
  bool enable_ilp = true;
  /// Exact MILP only for layers with at most this many operations...
  /// The defaults are sized to the 2 s layer budget, measured on random
  /// layer models with the revised simplex: at 8 ops / 7 devices it
  /// explores ~28 B&B nodes within budget (p95 wall 2.9 s — the deadline
  /// plus one node re-solve), more node-work than the dense tableau
  /// managed at the previous 7/6 gate (5 nodes, p95 2.5 s). One device
  /// more (8/8) was measured overshooting the budget up to 9x on single
  /// node solves, so the device gate stays at 7.
  int ilp_max_ops = 8;
  /// ...and at most this many devices visible to the layer model
  /// (inherited + new slots).
  int ilp_max_devices = 7;
  /// New (freely configurable) device slots offered to the layer model.
  int ilp_new_slots = 3;
  /// Budget per layer solve. The MILP runs once per layer per re-synthesis
  /// iteration with the heuristic result as a safety net, so the default
  /// budget is deliberately small; raise it to chase exactness.
  milp::MilpOptions milp = default_layer_milp_options();

  [[nodiscard]] static milp::MilpOptions default_layer_milp_options() {
    milp::MilpOptions options;
    options.max_nodes = 20000;
    options.time_limit_seconds = 2.0;
    return options;
  }
};

struct SynthesisOptions {
  /// |D|: maximal number of devices integrated on the chip.
  int max_devices = 25;
  LayeringOptions layering{};
  /// The constant `t` assigned to every transfer in the first pass. The
  /// first estimate is deliberately conservative (the progression's upper
  /// end plus margin); re-synthesis refines it downward per path.
  Minutes initial_transport{5};
  /// The user-defined arithmetic progression of refined transport times.
  schedule::TransportProgression progression{};
  /// Refinement method and, for Layout, its placement / distance knobs.
  TransportRefinement transport_refinement = TransportRefinement::Progression;
  layout::PlacementOptions placement{};
  layout::LayoutTransportOptions layout_transport{};
  model::CostModel costs{};
  EngineOptions engine{};
  /// Re-synthesis repeats while relative improvement exceeds this (the
  /// paper iterates on > 10%).
  double resynthesis_improvement_threshold = 0.10;
  /// Hard cap on re-synthesis iterations.
  int max_resynthesis_iterations = 6;
  /// Multi-start: run the whole flow this many times with different
  /// layering tie-break seeds and keep the best result. 1 = single run.
  int restarts = 1;
  /// Cooperative cancellation: checked between layers, re-synthesis
  /// iterations and branch-and-bound nodes. When it fires, synthesize()
  /// throws CancelledError. The default token never cancels.
  CancellationToken cancel{};
  /// Optional memoization of per-layer solves (owned by the caller — the
  /// batch engine shares one cache across jobs). Null disables caching.
  LayerSolveCache* layer_cache = nullptr;
  /// Optional per-layer-solve metrics sink (owned by the caller).
  SolveObserver* observer = nullptr;
};

}  // namespace cohls::core
