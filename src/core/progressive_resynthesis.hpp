// Progressive re-synthesis (Sec. 3.2) — the outer loop and the library's
// main entry point. The first pass synthesizes layers with forward-only
// device inheritance and a constant transport estimate; each further
// iteration re-runs all layers with (a) transport times refined from the
// previous binding (Sec. 4.1) and (b) the previous iteration's device usage
// offered to every layer (D \ D'_i), so earlier layers can exploit devices
// that later layers integrate anyway (Fig. 6). Iteration repeats while the
// weighted objective improves by more than the configured threshold (the
// paper iterates on > 10%).
#pragma once

#include <vector>

#include "core/hybrid_synthesizer.hpp"
#include "core/options.hpp"
#include "schedule/objective.hpp"

namespace cohls::core {

/// Table-3-style record of one iteration.
struct IterationRecord {
  SymbolicDuration execution_time;
  int device_count = 0;
  int path_count = 0;
  schedule::ObjectiveBreakdown objective;
};

struct SynthesisReport {
  /// The best result across iterations (ties favour earlier iterations).
  schedule::SynthesisResult result;
  LayerPlan plan{std::vector<std::vector<OperationId>>{}};
  /// iterations[0] is the initial pass; [k] the k-th re-synthesis.
  std::vector<IterationRecord> iterations;
  /// Transport plan the best result was synthesized (and validated) under.
  schedule::TransportPlan transport{Minutes{0}};
};

/// Full flow: layering -> initial pass -> progressive re-synthesis.
/// `policy` customizes binding (used by the conventional baseline).
[[nodiscard]] SynthesisReport synthesize(const model::Assay& assay,
                                         const SynthesisOptions& options = {},
                                         const PassPolicy& policy = {});

}  // namespace cohls::core
