#include "core/transport_estimator.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace cohls::core {

schedule::TransportPlan refine_transport(const schedule::SynthesisResult& result,
                                         const model::Assay& assay,
                                         const schedule::TransportProgression& progression,
                                         Minutes fallback) {
  schedule::TransportPlan plan(fallback);
  const auto binding = result.binding();

  // Count how many transfers use each inter-device path.
  std::map<schedule::DevicePath, int> usage;
  for (const model::Operation& op : assay.operations()) {
    const auto parent_device = binding.find(op.id());
    if (parent_device == binding.end()) {
      continue;
    }
    for (const OperationId child : assay.children(op.id())) {
      const auto child_device = binding.find(child);
      if (child_device == binding.end()) {
        continue;
      }
      if (parent_device->second != child_device->second) {
        ++usage[schedule::make_path(parent_device->second, child_device->second)];
      }
    }
  }

  // Rank paths by usage (descending); the busiest paths get the shortest
  // terms. Rank r of P paths maps to term floor(r * terms / P).
  std::vector<std::pair<schedule::DevicePath, int>> ranked(usage.begin(), usage.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  std::map<schedule::DevicePath, Minutes> path_time;
  const int path_count = static_cast<int>(ranked.size());
  for (int r = 0; r < path_count; ++r) {
    const int term_index = (r * progression.terms) / std::max(path_count, 1);
    path_time[ranked[static_cast<std::size_t>(r)].first] = progression.term(term_index);
  }

  // Write per-edge times.
  for (const model::Operation& op : assay.operations()) {
    const auto parent_device = binding.find(op.id());
    if (parent_device == binding.end()) {
      continue;
    }
    for (const OperationId child : assay.children(op.id())) {
      const auto child_device = binding.find(child);
      if (child_device == binding.end()) {
        continue;
      }
      if (parent_device->second == child_device->second) {
        plan.set_edge_time(op.id(), child, Minutes{0});
      } else {
        plan.set_edge_time(
            op.id(), child,
            path_time.at(schedule::make_path(parent_device->second, child_device->second)));
      }
    }
  }
  return plan;
}

}  // namespace cohls::core
