// Per-layer engine selection. Small layers are solved exactly with the
// branch-and-bound MILP (the paper's per-layer ILP); every layer is also
// solved by the heuristic list scheduler, and the better-scoring result is
// kept. Layers above the engine's size thresholds use the heuristic alone.
#pragma once

#include "core/ilp_layer_model.hpp"
#include "core/options.hpp"
#include "schedule/list_scheduler.hpp"

namespace cohls::core {

struct LayerOutcome {
  schedule::LayerResult result;
  /// Inventory after this layer (devices the layer created are appended).
  model::DeviceInventory inventory{1};
  bool used_ilp = false;
  /// The layer-local objective of the kept result (for diagnostics).
  double score = 0.0;
  /// Branch-and-bound nodes the MILP spent on this layer (0 when the
  /// heuristic ran alone), for the engine's metrics.
  long milp_nodes = 0;
  /// LP work inside the MILP: simplex pivots, warm dual re-solves from a
  /// parent basis, from-scratch solves and basis refactorizations.
  long lp_pivots = 0;
  long lp_warm_solves = 0;
  long lp_cold_solves = 0;
  long lp_refactorizations = 0;
  /// Parallel MILP search summary (defaults when the solve ran sequentially):
  /// worker team size, nodes stolen across worker deques, accepted shared
  /// incumbent updates, offers lost to a concurrent update, and summed wall
  /// time workers spent waiting for work.
  int milp_threads = 1;
  long milp_steals = 0;
  long milp_incumbent_updates = 0;
  long milp_incumbent_races = 0;
  double milp_idle_seconds = 0.0;
  /// Bound-driven search summary: nodes pruned by the combinatorial bound
  /// before any LP solve, nodes pruned by the LP dual objective-cutoff, LP
  /// re-solves spent in the root dive, and whether the dive installed the
  /// first incumbent.
  long milp_bound_prunes = 0;
  long milp_cutoff_prunes = 0;
  long milp_dive_lp_solves = 0;
  bool milp_dive_found_incumbent = false;
  /// The MILP stopped on a cancellation token rather than on exhaustion or
  /// a budget. The outcome (the heuristic fallback) is still usable, but it
  /// must not be cached: a fresh solve could return something better.
  bool milp_cancelled = false;
};

/// Scores one layer's contribution to the paper's objective: C_t * layer
/// makespan + integration cost of devices the layer created + C_p * newly
/// created paths.
[[nodiscard]] double layer_score(const schedule::LayerResult& result,
                                 const model::DeviceInventory& inventory,
                                 const schedule::LayerRequest& request,
                                 const model::Assay& assay,
                                 const model::CostModel& costs);

/// Synthesizes one layer from `inventory` (left untouched; the returned
/// outcome carries the updated copy).
[[nodiscard]] LayerOutcome synthesize_layer(const schedule::LayerRequest& request,
                                            const model::Assay& assay,
                                            const schedule::TransportPlan& transport,
                                            const model::CostModel& costs,
                                            const EngineOptions& engine,
                                            const model::DeviceInventory& inventory);

}  // namespace cohls::core
