# Empty dependencies file for single_cell_profiling.
# This may be replaced when dependencies are built.
