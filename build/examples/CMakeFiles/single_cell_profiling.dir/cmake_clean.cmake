file(REMOVE_RECURSE
  "CMakeFiles/single_cell_profiling.dir/single_cell_profiling.cpp.o"
  "CMakeFiles/single_cell_profiling.dir/single_cell_profiling.cpp.o.d"
  "single_cell_profiling"
  "single_cell_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_cell_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
