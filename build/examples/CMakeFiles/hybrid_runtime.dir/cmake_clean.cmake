file(REMOVE_RECURSE
  "CMakeFiles/hybrid_runtime.dir/hybrid_runtime.cpp.o"
  "CMakeFiles/hybrid_runtime.dir/hybrid_runtime.cpp.o.d"
  "hybrid_runtime"
  "hybrid_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
