# Empty compiler generated dependencies file for hybrid_runtime.
# This may be replaced when dependencies are built.
