file(REMOVE_RECURSE
  "CMakeFiles/custom_components.dir/custom_components.cpp.o"
  "CMakeFiles/custom_components.dir/custom_components.cpp.o.d"
  "custom_components"
  "custom_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
