# Empty dependencies file for custom_components.
# This may be replaced when dependencies are built.
