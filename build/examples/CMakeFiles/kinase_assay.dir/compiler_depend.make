# Empty compiler generated dependencies file for kinase_assay.
# This may be replaced when dependencies are built.
