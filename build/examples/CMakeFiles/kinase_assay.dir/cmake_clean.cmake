file(REMOVE_RECURSE
  "CMakeFiles/kinase_assay.dir/kinase_assay.cpp.o"
  "CMakeFiles/kinase_assay.dir/kinase_assay.cpp.o.d"
  "kinase_assay"
  "kinase_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kinase_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
