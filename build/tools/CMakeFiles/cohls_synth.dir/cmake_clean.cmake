file(REMOVE_RECURSE
  "CMakeFiles/cohls_synth.dir/cohls_synth.cpp.o"
  "CMakeFiles/cohls_synth.dir/cohls_synth.cpp.o.d"
  "cohls_synth"
  "cohls_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
