# Empty dependencies file for cohls_synth.
# This may be replaced when dependencies are built.
