file(REMOVE_RECURSE
  "libcohls_sim.a"
)
