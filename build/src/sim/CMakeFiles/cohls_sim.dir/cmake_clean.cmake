file(REMOVE_RECURSE
  "CMakeFiles/cohls_sim.dir/runtime.cpp.o"
  "CMakeFiles/cohls_sim.dir/runtime.cpp.o.d"
  "libcohls_sim.a"
  "libcohls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
