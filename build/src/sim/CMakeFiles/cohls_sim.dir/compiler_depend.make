# Empty compiler generated dependencies file for cohls_sim.
# This may be replaced when dependencies are built.
