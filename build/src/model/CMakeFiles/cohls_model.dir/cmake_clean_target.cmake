file(REMOVE_RECURSE
  "libcohls_model.a"
)
