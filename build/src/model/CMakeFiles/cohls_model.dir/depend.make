# Empty dependencies file for cohls_model.
# This may be replaced when dependencies are built.
