file(REMOVE_RECURSE
  "CMakeFiles/cohls_model.dir/assay.cpp.o"
  "CMakeFiles/cohls_model.dir/assay.cpp.o.d"
  "CMakeFiles/cohls_model.dir/compatibility.cpp.o"
  "CMakeFiles/cohls_model.dir/compatibility.cpp.o.d"
  "CMakeFiles/cohls_model.dir/components.cpp.o"
  "CMakeFiles/cohls_model.dir/components.cpp.o.d"
  "CMakeFiles/cohls_model.dir/cost_model.cpp.o"
  "CMakeFiles/cohls_model.dir/cost_model.cpp.o.d"
  "CMakeFiles/cohls_model.dir/device.cpp.o"
  "CMakeFiles/cohls_model.dir/device.cpp.o.d"
  "CMakeFiles/cohls_model.dir/operation.cpp.o"
  "CMakeFiles/cohls_model.dir/operation.cpp.o.d"
  "libcohls_model.a"
  "libcohls_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
