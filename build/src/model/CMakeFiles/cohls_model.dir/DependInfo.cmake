
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/assay.cpp" "src/model/CMakeFiles/cohls_model.dir/assay.cpp.o" "gcc" "src/model/CMakeFiles/cohls_model.dir/assay.cpp.o.d"
  "/root/repo/src/model/compatibility.cpp" "src/model/CMakeFiles/cohls_model.dir/compatibility.cpp.o" "gcc" "src/model/CMakeFiles/cohls_model.dir/compatibility.cpp.o.d"
  "/root/repo/src/model/components.cpp" "src/model/CMakeFiles/cohls_model.dir/components.cpp.o" "gcc" "src/model/CMakeFiles/cohls_model.dir/components.cpp.o.d"
  "/root/repo/src/model/cost_model.cpp" "src/model/CMakeFiles/cohls_model.dir/cost_model.cpp.o" "gcc" "src/model/CMakeFiles/cohls_model.dir/cost_model.cpp.o.d"
  "/root/repo/src/model/device.cpp" "src/model/CMakeFiles/cohls_model.dir/device.cpp.o" "gcc" "src/model/CMakeFiles/cohls_model.dir/device.cpp.o.d"
  "/root/repo/src/model/operation.cpp" "src/model/CMakeFiles/cohls_model.dir/operation.cpp.o" "gcc" "src/model/CMakeFiles/cohls_model.dir/operation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
