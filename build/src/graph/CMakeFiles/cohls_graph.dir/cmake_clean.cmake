file(REMOVE_RECURSE
  "CMakeFiles/cohls_graph.dir/digraph.cpp.o"
  "CMakeFiles/cohls_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/cohls_graph.dir/max_flow.cpp.o"
  "CMakeFiles/cohls_graph.dir/max_flow.cpp.o.d"
  "CMakeFiles/cohls_graph.dir/traversal.cpp.o"
  "CMakeFiles/cohls_graph.dir/traversal.cpp.o.d"
  "libcohls_graph.a"
  "libcohls_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
