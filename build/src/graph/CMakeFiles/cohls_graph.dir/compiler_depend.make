# Empty compiler generated dependencies file for cohls_graph.
# This may be replaced when dependencies are built.
