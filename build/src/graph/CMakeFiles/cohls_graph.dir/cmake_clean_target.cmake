file(REMOVE_RECURSE
  "libcohls_graph.a"
)
