# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("graph")
subdirs("lp")
subdirs("milp")
subdirs("model")
subdirs("schedule")
subdirs("io")
subdirs("sim")
subdirs("layout")
subdirs("chip")
subdirs("core")
subdirs("baseline")
subdirs("assays")
