# Empty dependencies file for cohls_core.
# This may be replaced when dependencies are built.
