file(REMOVE_RECURSE
  "libcohls_core.a"
)
