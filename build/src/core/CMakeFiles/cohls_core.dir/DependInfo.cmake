
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hybrid_synthesizer.cpp" "src/core/CMakeFiles/cohls_core.dir/hybrid_synthesizer.cpp.o" "gcc" "src/core/CMakeFiles/cohls_core.dir/hybrid_synthesizer.cpp.o.d"
  "/root/repo/src/core/ilp_layer_model.cpp" "src/core/CMakeFiles/cohls_core.dir/ilp_layer_model.cpp.o" "gcc" "src/core/CMakeFiles/cohls_core.dir/ilp_layer_model.cpp.o.d"
  "/root/repo/src/core/layer_synthesizer.cpp" "src/core/CMakeFiles/cohls_core.dir/layer_synthesizer.cpp.o" "gcc" "src/core/CMakeFiles/cohls_core.dir/layer_synthesizer.cpp.o.d"
  "/root/repo/src/core/layering.cpp" "src/core/CMakeFiles/cohls_core.dir/layering.cpp.o" "gcc" "src/core/CMakeFiles/cohls_core.dir/layering.cpp.o.d"
  "/root/repo/src/core/progressive_resynthesis.cpp" "src/core/CMakeFiles/cohls_core.dir/progressive_resynthesis.cpp.o" "gcc" "src/core/CMakeFiles/cohls_core.dir/progressive_resynthesis.cpp.o.d"
  "/root/repo/src/core/transport_estimator.cpp" "src/core/CMakeFiles/cohls_core.dir/transport_estimator.cpp.o" "gcc" "src/core/CMakeFiles/cohls_core.dir/transport_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/cohls_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/cohls_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/cohls_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cohls_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cohls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
