file(REMOVE_RECURSE
  "CMakeFiles/cohls_core.dir/hybrid_synthesizer.cpp.o"
  "CMakeFiles/cohls_core.dir/hybrid_synthesizer.cpp.o.d"
  "CMakeFiles/cohls_core.dir/ilp_layer_model.cpp.o"
  "CMakeFiles/cohls_core.dir/ilp_layer_model.cpp.o.d"
  "CMakeFiles/cohls_core.dir/layer_synthesizer.cpp.o"
  "CMakeFiles/cohls_core.dir/layer_synthesizer.cpp.o.d"
  "CMakeFiles/cohls_core.dir/layering.cpp.o"
  "CMakeFiles/cohls_core.dir/layering.cpp.o.d"
  "CMakeFiles/cohls_core.dir/progressive_resynthesis.cpp.o"
  "CMakeFiles/cohls_core.dir/progressive_resynthesis.cpp.o.d"
  "CMakeFiles/cohls_core.dir/transport_estimator.cpp.o"
  "CMakeFiles/cohls_core.dir/transport_estimator.cpp.o.d"
  "libcohls_core.a"
  "libcohls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
