file(REMOVE_RECURSE
  "CMakeFiles/cohls_lp.dir/model.cpp.o"
  "CMakeFiles/cohls_lp.dir/model.cpp.o.d"
  "CMakeFiles/cohls_lp.dir/presolve.cpp.o"
  "CMakeFiles/cohls_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/cohls_lp.dir/simplex.cpp.o"
  "CMakeFiles/cohls_lp.dir/simplex.cpp.o.d"
  "libcohls_lp.a"
  "libcohls_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
