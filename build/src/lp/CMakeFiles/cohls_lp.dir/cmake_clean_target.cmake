file(REMOVE_RECURSE
  "libcohls_lp.a"
)
