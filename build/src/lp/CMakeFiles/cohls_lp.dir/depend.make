# Empty dependencies file for cohls_lp.
# This may be replaced when dependencies are built.
