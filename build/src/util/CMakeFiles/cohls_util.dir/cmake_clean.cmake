file(REMOVE_RECURSE
  "CMakeFiles/cohls_util.dir/check.cpp.o"
  "CMakeFiles/cohls_util.dir/check.cpp.o.d"
  "CMakeFiles/cohls_util.dir/rng.cpp.o"
  "CMakeFiles/cohls_util.dir/rng.cpp.o.d"
  "CMakeFiles/cohls_util.dir/symbolic_duration.cpp.o"
  "CMakeFiles/cohls_util.dir/symbolic_duration.cpp.o.d"
  "CMakeFiles/cohls_util.dir/table.cpp.o"
  "CMakeFiles/cohls_util.dir/table.cpp.o.d"
  "CMakeFiles/cohls_util.dir/time.cpp.o"
  "CMakeFiles/cohls_util.dir/time.cpp.o.d"
  "libcohls_util.a"
  "libcohls_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
