# Empty dependencies file for cohls_util.
# This may be replaced when dependencies are built.
