file(REMOVE_RECURSE
  "libcohls_util.a"
)
