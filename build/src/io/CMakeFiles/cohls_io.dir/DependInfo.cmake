
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/assay_text.cpp" "src/io/CMakeFiles/cohls_io.dir/assay_text.cpp.o" "gcc" "src/io/CMakeFiles/cohls_io.dir/assay_text.cpp.o.d"
  "/root/repo/src/io/export.cpp" "src/io/CMakeFiles/cohls_io.dir/export.cpp.o" "gcc" "src/io/CMakeFiles/cohls_io.dir/export.cpp.o.d"
  "/root/repo/src/io/result_text.cpp" "src/io/CMakeFiles/cohls_io.dir/result_text.cpp.o" "gcc" "src/io/CMakeFiles/cohls_io.dir/result_text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/cohls_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cohls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
