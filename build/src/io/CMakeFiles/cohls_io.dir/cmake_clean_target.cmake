file(REMOVE_RECURSE
  "libcohls_io.a"
)
