# Empty dependencies file for cohls_io.
# This may be replaced when dependencies are built.
