file(REMOVE_RECURSE
  "CMakeFiles/cohls_io.dir/assay_text.cpp.o"
  "CMakeFiles/cohls_io.dir/assay_text.cpp.o.d"
  "CMakeFiles/cohls_io.dir/export.cpp.o"
  "CMakeFiles/cohls_io.dir/export.cpp.o.d"
  "CMakeFiles/cohls_io.dir/result_text.cpp.o"
  "CMakeFiles/cohls_io.dir/result_text.cpp.o.d"
  "libcohls_io.a"
  "libcohls_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
