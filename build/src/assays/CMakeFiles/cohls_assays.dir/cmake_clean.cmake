file(REMOVE_RECURSE
  "CMakeFiles/cohls_assays.dir/benchmarks.cpp.o"
  "CMakeFiles/cohls_assays.dir/benchmarks.cpp.o.d"
  "CMakeFiles/cohls_assays.dir/random_assay.cpp.o"
  "CMakeFiles/cohls_assays.dir/random_assay.cpp.o.d"
  "libcohls_assays.a"
  "libcohls_assays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_assays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
