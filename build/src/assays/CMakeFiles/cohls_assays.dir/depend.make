# Empty dependencies file for cohls_assays.
# This may be replaced when dependencies are built.
