file(REMOVE_RECURSE
  "libcohls_assays.a"
)
