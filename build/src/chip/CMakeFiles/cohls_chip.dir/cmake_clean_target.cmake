file(REMOVE_RECURSE
  "libcohls_chip.a"
)
