# Empty dependencies file for cohls_chip.
# This may be replaced when dependencies are built.
