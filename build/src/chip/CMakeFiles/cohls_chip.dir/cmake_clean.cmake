file(REMOVE_RECURSE
  "CMakeFiles/cohls_chip.dir/resources.cpp.o"
  "CMakeFiles/cohls_chip.dir/resources.cpp.o.d"
  "libcohls_chip.a"
  "libcohls_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
