file(REMOVE_RECURSE
  "CMakeFiles/cohls_milp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/cohls_milp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/cohls_milp.dir/model.cpp.o"
  "CMakeFiles/cohls_milp.dir/model.cpp.o.d"
  "libcohls_milp.a"
  "libcohls_milp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
