file(REMOVE_RECURSE
  "libcohls_milp.a"
)
