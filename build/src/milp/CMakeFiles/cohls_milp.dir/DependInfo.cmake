
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/milp/branch_and_bound.cpp" "src/milp/CMakeFiles/cohls_milp.dir/branch_and_bound.cpp.o" "gcc" "src/milp/CMakeFiles/cohls_milp.dir/branch_and_bound.cpp.o.d"
  "/root/repo/src/milp/model.cpp" "src/milp/CMakeFiles/cohls_milp.dir/model.cpp.o" "gcc" "src/milp/CMakeFiles/cohls_milp.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/cohls_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
