# Empty compiler generated dependencies file for cohls_milp.
# This may be replaced when dependencies are built.
