file(REMOVE_RECURSE
  "libcohls_layout.a"
)
