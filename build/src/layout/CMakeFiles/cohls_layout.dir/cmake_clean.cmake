file(REMOVE_RECURSE
  "CMakeFiles/cohls_layout.dir/placement.cpp.o"
  "CMakeFiles/cohls_layout.dir/placement.cpp.o.d"
  "CMakeFiles/cohls_layout.dir/transport_from_layout.cpp.o"
  "CMakeFiles/cohls_layout.dir/transport_from_layout.cpp.o.d"
  "libcohls_layout.a"
  "libcohls_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
