# Empty dependencies file for cohls_layout.
# This may be replaced when dependencies are built.
