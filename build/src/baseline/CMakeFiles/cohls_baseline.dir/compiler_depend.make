# Empty compiler generated dependencies file for cohls_baseline.
# This may be replaced when dependencies are built.
