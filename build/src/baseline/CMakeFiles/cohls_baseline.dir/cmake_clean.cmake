file(REMOVE_RECURSE
  "CMakeFiles/cohls_baseline.dir/conventional.cpp.o"
  "CMakeFiles/cohls_baseline.dir/conventional.cpp.o.d"
  "libcohls_baseline.a"
  "libcohls_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
