file(REMOVE_RECURSE
  "libcohls_baseline.a"
)
