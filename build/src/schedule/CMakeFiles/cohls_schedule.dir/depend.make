# Empty dependencies file for cohls_schedule.
# This may be replaced when dependencies are built.
