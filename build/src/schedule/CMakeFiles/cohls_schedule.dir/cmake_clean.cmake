file(REMOVE_RECURSE
  "CMakeFiles/cohls_schedule.dir/list_scheduler.cpp.o"
  "CMakeFiles/cohls_schedule.dir/list_scheduler.cpp.o.d"
  "CMakeFiles/cohls_schedule.dir/objective.cpp.o"
  "CMakeFiles/cohls_schedule.dir/objective.cpp.o.d"
  "CMakeFiles/cohls_schedule.dir/transport_plan.cpp.o"
  "CMakeFiles/cohls_schedule.dir/transport_plan.cpp.o.d"
  "CMakeFiles/cohls_schedule.dir/types.cpp.o"
  "CMakeFiles/cohls_schedule.dir/types.cpp.o.d"
  "CMakeFiles/cohls_schedule.dir/validate.cpp.o"
  "CMakeFiles/cohls_schedule.dir/validate.cpp.o.d"
  "libcohls_schedule.a"
  "libcohls_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
