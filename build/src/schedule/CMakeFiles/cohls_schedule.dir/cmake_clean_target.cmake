file(REMOVE_RECURSE
  "libcohls_schedule.a"
)
