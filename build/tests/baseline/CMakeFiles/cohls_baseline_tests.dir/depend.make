# Empty dependencies file for cohls_baseline_tests.
# This may be replaced when dependencies are built.
