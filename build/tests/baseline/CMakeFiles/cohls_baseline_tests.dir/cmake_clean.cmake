file(REMOVE_RECURSE
  "CMakeFiles/cohls_baseline_tests.dir/test_conventional.cpp.o"
  "CMakeFiles/cohls_baseline_tests.dir/test_conventional.cpp.o.d"
  "cohls_baseline_tests"
  "cohls_baseline_tests.pdb"
  "cohls_baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
