file(REMOVE_RECURSE
  "CMakeFiles/cohls_lp_tests.dir/test_lp_model.cpp.o"
  "CMakeFiles/cohls_lp_tests.dir/test_lp_model.cpp.o.d"
  "CMakeFiles/cohls_lp_tests.dir/test_presolve.cpp.o"
  "CMakeFiles/cohls_lp_tests.dir/test_presolve.cpp.o.d"
  "CMakeFiles/cohls_lp_tests.dir/test_simplex_basic.cpp.o"
  "CMakeFiles/cohls_lp_tests.dir/test_simplex_basic.cpp.o.d"
  "CMakeFiles/cohls_lp_tests.dir/test_simplex_property.cpp.o"
  "CMakeFiles/cohls_lp_tests.dir/test_simplex_property.cpp.o.d"
  "cohls_lp_tests"
  "cohls_lp_tests.pdb"
  "cohls_lp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_lp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
