# Empty dependencies file for cohls_lp_tests.
# This may be replaced when dependencies are built.
