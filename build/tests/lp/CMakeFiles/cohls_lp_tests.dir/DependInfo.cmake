
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lp/test_lp_model.cpp" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_lp_model.cpp.o" "gcc" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_lp_model.cpp.o.d"
  "/root/repo/tests/lp/test_presolve.cpp" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_presolve.cpp.o" "gcc" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_presolve.cpp.o.d"
  "/root/repo/tests/lp/test_simplex_basic.cpp" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_simplex_basic.cpp.o" "gcc" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_simplex_basic.cpp.o.d"
  "/root/repo/tests/lp/test_simplex_property.cpp" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_simplex_property.cpp.o" "gcc" "tests/lp/CMakeFiles/cohls_lp_tests.dir/test_simplex_property.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/cohls_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
