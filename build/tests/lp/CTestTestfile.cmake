# CMake generated Testfile for 
# Source directory: /root/repo/tests/lp
# Build directory: /root/repo/build/tests/lp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lp/cohls_lp_tests[1]_include.cmake")
