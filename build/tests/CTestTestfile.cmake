# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("graph")
subdirs("lp")
subdirs("milp")
subdirs("model")
subdirs("schedule")
subdirs("core")
subdirs("baseline")
subdirs("assays")
subdirs("integration")
subdirs("io")
subdirs("sim")
subdirs("layout")
subdirs("chip")
