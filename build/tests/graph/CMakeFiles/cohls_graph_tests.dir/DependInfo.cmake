
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_digraph.cpp" "tests/graph/CMakeFiles/cohls_graph_tests.dir/test_digraph.cpp.o" "gcc" "tests/graph/CMakeFiles/cohls_graph_tests.dir/test_digraph.cpp.o.d"
  "/root/repo/tests/graph/test_max_flow.cpp" "tests/graph/CMakeFiles/cohls_graph_tests.dir/test_max_flow.cpp.o" "gcc" "tests/graph/CMakeFiles/cohls_graph_tests.dir/test_max_flow.cpp.o.d"
  "/root/repo/tests/graph/test_traversal.cpp" "tests/graph/CMakeFiles/cohls_graph_tests.dir/test_traversal.cpp.o" "gcc" "tests/graph/CMakeFiles/cohls_graph_tests.dir/test_traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
