# Empty compiler generated dependencies file for cohls_graph_tests.
# This may be replaced when dependencies are built.
