file(REMOVE_RECURSE
  "CMakeFiles/cohls_graph_tests.dir/test_digraph.cpp.o"
  "CMakeFiles/cohls_graph_tests.dir/test_digraph.cpp.o.d"
  "CMakeFiles/cohls_graph_tests.dir/test_max_flow.cpp.o"
  "CMakeFiles/cohls_graph_tests.dir/test_max_flow.cpp.o.d"
  "CMakeFiles/cohls_graph_tests.dir/test_traversal.cpp.o"
  "CMakeFiles/cohls_graph_tests.dir/test_traversal.cpp.o.d"
  "cohls_graph_tests"
  "cohls_graph_tests.pdb"
  "cohls_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
