
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/schedule/test_list_scheduler.cpp" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_list_scheduler.cpp.o" "gcc" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_list_scheduler.cpp.o.d"
  "/root/repo/tests/schedule/test_objective.cpp" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_objective.cpp.o" "gcc" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_objective.cpp.o.d"
  "/root/repo/tests/schedule/test_transport_plan.cpp" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_transport_plan.cpp.o" "gcc" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_transport_plan.cpp.o.d"
  "/root/repo/tests/schedule/test_types.cpp" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_types.cpp.o" "gcc" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_types.cpp.o.d"
  "/root/repo/tests/schedule/test_validate.cpp" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_validate.cpp.o" "gcc" "tests/schedule/CMakeFiles/cohls_schedule_tests.dir/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schedule/CMakeFiles/cohls_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/assays/CMakeFiles/cohls_assays.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cohls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
