file(REMOVE_RECURSE
  "CMakeFiles/cohls_schedule_tests.dir/test_list_scheduler.cpp.o"
  "CMakeFiles/cohls_schedule_tests.dir/test_list_scheduler.cpp.o.d"
  "CMakeFiles/cohls_schedule_tests.dir/test_objective.cpp.o"
  "CMakeFiles/cohls_schedule_tests.dir/test_objective.cpp.o.d"
  "CMakeFiles/cohls_schedule_tests.dir/test_transport_plan.cpp.o"
  "CMakeFiles/cohls_schedule_tests.dir/test_transport_plan.cpp.o.d"
  "CMakeFiles/cohls_schedule_tests.dir/test_types.cpp.o"
  "CMakeFiles/cohls_schedule_tests.dir/test_types.cpp.o.d"
  "CMakeFiles/cohls_schedule_tests.dir/test_validate.cpp.o"
  "CMakeFiles/cohls_schedule_tests.dir/test_validate.cpp.o.d"
  "cohls_schedule_tests"
  "cohls_schedule_tests.pdb"
  "cohls_schedule_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_schedule_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
