# Empty dependencies file for cohls_schedule_tests.
# This may be replaced when dependencies are built.
