# CMake generated Testfile for 
# Source directory: /root/repo/tests/schedule
# Build directory: /root/repo/build/tests/schedule
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/schedule/cohls_schedule_tests[1]_include.cmake")
