# CMake generated Testfile for 
# Source directory: /root/repo/tests/milp
# Build directory: /root/repo/build/tests/milp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/milp/cohls_milp_tests[1]_include.cmake")
