file(REMOVE_RECURSE
  "CMakeFiles/cohls_milp_tests.dir/test_milp_model.cpp.o"
  "CMakeFiles/cohls_milp_tests.dir/test_milp_model.cpp.o.d"
  "CMakeFiles/cohls_milp_tests.dir/test_milp_property.cpp.o"
  "CMakeFiles/cohls_milp_tests.dir/test_milp_property.cpp.o.d"
  "CMakeFiles/cohls_milp_tests.dir/test_milp_small.cpp.o"
  "CMakeFiles/cohls_milp_tests.dir/test_milp_small.cpp.o.d"
  "cohls_milp_tests"
  "cohls_milp_tests.pdb"
  "cohls_milp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_milp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
