
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/milp/test_milp_model.cpp" "tests/milp/CMakeFiles/cohls_milp_tests.dir/test_milp_model.cpp.o" "gcc" "tests/milp/CMakeFiles/cohls_milp_tests.dir/test_milp_model.cpp.o.d"
  "/root/repo/tests/milp/test_milp_property.cpp" "tests/milp/CMakeFiles/cohls_milp_tests.dir/test_milp_property.cpp.o" "gcc" "tests/milp/CMakeFiles/cohls_milp_tests.dir/test_milp_property.cpp.o.d"
  "/root/repo/tests/milp/test_milp_small.cpp" "tests/milp/CMakeFiles/cohls_milp_tests.dir/test_milp_small.cpp.o" "gcc" "tests/milp/CMakeFiles/cohls_milp_tests.dir/test_milp_small.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/milp/CMakeFiles/cohls_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cohls_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
