# Empty compiler generated dependencies file for cohls_milp_tests.
# This may be replaced when dependencies are built.
