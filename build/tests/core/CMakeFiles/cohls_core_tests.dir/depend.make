# Empty dependencies file for cohls_core_tests.
# This may be replaced when dependencies are built.
