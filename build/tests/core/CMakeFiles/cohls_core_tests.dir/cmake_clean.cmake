file(REMOVE_RECURSE
  "CMakeFiles/cohls_core_tests.dir/test_hybrid_synthesizer.cpp.o"
  "CMakeFiles/cohls_core_tests.dir/test_hybrid_synthesizer.cpp.o.d"
  "CMakeFiles/cohls_core_tests.dir/test_ilp_layer_model.cpp.o"
  "CMakeFiles/cohls_core_tests.dir/test_ilp_layer_model.cpp.o.d"
  "CMakeFiles/cohls_core_tests.dir/test_layer_synthesizer.cpp.o"
  "CMakeFiles/cohls_core_tests.dir/test_layer_synthesizer.cpp.o.d"
  "CMakeFiles/cohls_core_tests.dir/test_layering.cpp.o"
  "CMakeFiles/cohls_core_tests.dir/test_layering.cpp.o.d"
  "CMakeFiles/cohls_core_tests.dir/test_progressive_resynthesis.cpp.o"
  "CMakeFiles/cohls_core_tests.dir/test_progressive_resynthesis.cpp.o.d"
  "CMakeFiles/cohls_core_tests.dir/test_transport_estimator.cpp.o"
  "CMakeFiles/cohls_core_tests.dir/test_transport_estimator.cpp.o.d"
  "cohls_core_tests"
  "cohls_core_tests.pdb"
  "cohls_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
