file(REMOVE_RECURSE
  "CMakeFiles/cohls_assays_tests.dir/test_benchmarks.cpp.o"
  "CMakeFiles/cohls_assays_tests.dir/test_benchmarks.cpp.o.d"
  "CMakeFiles/cohls_assays_tests.dir/test_random_assay.cpp.o"
  "CMakeFiles/cohls_assays_tests.dir/test_random_assay.cpp.o.d"
  "cohls_assays_tests"
  "cohls_assays_tests.pdb"
  "cohls_assays_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_assays_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
