# Empty compiler generated dependencies file for cohls_assays_tests.
# This may be replaced when dependencies are built.
