
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assays/test_benchmarks.cpp" "tests/assays/CMakeFiles/cohls_assays_tests.dir/test_benchmarks.cpp.o" "gcc" "tests/assays/CMakeFiles/cohls_assays_tests.dir/test_benchmarks.cpp.o.d"
  "/root/repo/tests/assays/test_random_assay.cpp" "tests/assays/CMakeFiles/cohls_assays_tests.dir/test_random_assay.cpp.o" "gcc" "tests/assays/CMakeFiles/cohls_assays_tests.dir/test_random_assay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assays/CMakeFiles/cohls_assays.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cohls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
