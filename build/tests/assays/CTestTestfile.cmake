# CMake generated Testfile for 
# Source directory: /root/repo/tests/assays
# Build directory: /root/repo/build/tests/assays
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/assays/cohls_assays_tests[1]_include.cmake")
