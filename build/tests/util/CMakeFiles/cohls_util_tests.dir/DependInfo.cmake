
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_check.cpp" "tests/util/CMakeFiles/cohls_util_tests.dir/test_check.cpp.o" "gcc" "tests/util/CMakeFiles/cohls_util_tests.dir/test_check.cpp.o.d"
  "/root/repo/tests/util/test_ids.cpp" "tests/util/CMakeFiles/cohls_util_tests.dir/test_ids.cpp.o" "gcc" "tests/util/CMakeFiles/cohls_util_tests.dir/test_ids.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/util/CMakeFiles/cohls_util_tests.dir/test_rng.cpp.o" "gcc" "tests/util/CMakeFiles/cohls_util_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_symbolic_duration.cpp" "tests/util/CMakeFiles/cohls_util_tests.dir/test_symbolic_duration.cpp.o" "gcc" "tests/util/CMakeFiles/cohls_util_tests.dir/test_symbolic_duration.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/util/CMakeFiles/cohls_util_tests.dir/test_table.cpp.o" "gcc" "tests/util/CMakeFiles/cohls_util_tests.dir/test_table.cpp.o.d"
  "/root/repo/tests/util/test_time.cpp" "tests/util/CMakeFiles/cohls_util_tests.dir/test_time.cpp.o" "gcc" "tests/util/CMakeFiles/cohls_util_tests.dir/test_time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
