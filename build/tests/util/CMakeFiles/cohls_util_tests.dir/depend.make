# Empty dependencies file for cohls_util_tests.
# This may be replaced when dependencies are built.
