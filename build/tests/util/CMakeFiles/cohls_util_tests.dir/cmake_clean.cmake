file(REMOVE_RECURSE
  "CMakeFiles/cohls_util_tests.dir/test_check.cpp.o"
  "CMakeFiles/cohls_util_tests.dir/test_check.cpp.o.d"
  "CMakeFiles/cohls_util_tests.dir/test_ids.cpp.o"
  "CMakeFiles/cohls_util_tests.dir/test_ids.cpp.o.d"
  "CMakeFiles/cohls_util_tests.dir/test_rng.cpp.o"
  "CMakeFiles/cohls_util_tests.dir/test_rng.cpp.o.d"
  "CMakeFiles/cohls_util_tests.dir/test_symbolic_duration.cpp.o"
  "CMakeFiles/cohls_util_tests.dir/test_symbolic_duration.cpp.o.d"
  "CMakeFiles/cohls_util_tests.dir/test_table.cpp.o"
  "CMakeFiles/cohls_util_tests.dir/test_table.cpp.o.d"
  "CMakeFiles/cohls_util_tests.dir/test_time.cpp.o"
  "CMakeFiles/cohls_util_tests.dir/test_time.cpp.o.d"
  "cohls_util_tests"
  "cohls_util_tests.pdb"
  "cohls_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
