# Empty compiler generated dependencies file for cohls_model_tests.
# This may be replaced when dependencies are built.
