file(REMOVE_RECURSE
  "CMakeFiles/cohls_model_tests.dir/test_assay.cpp.o"
  "CMakeFiles/cohls_model_tests.dir/test_assay.cpp.o.d"
  "CMakeFiles/cohls_model_tests.dir/test_compatibility.cpp.o"
  "CMakeFiles/cohls_model_tests.dir/test_compatibility.cpp.o.d"
  "CMakeFiles/cohls_model_tests.dir/test_components.cpp.o"
  "CMakeFiles/cohls_model_tests.dir/test_components.cpp.o.d"
  "CMakeFiles/cohls_model_tests.dir/test_cost_model.cpp.o"
  "CMakeFiles/cohls_model_tests.dir/test_cost_model.cpp.o.d"
  "CMakeFiles/cohls_model_tests.dir/test_device.cpp.o"
  "CMakeFiles/cohls_model_tests.dir/test_device.cpp.o.d"
  "CMakeFiles/cohls_model_tests.dir/test_operation.cpp.o"
  "CMakeFiles/cohls_model_tests.dir/test_operation.cpp.o.d"
  "cohls_model_tests"
  "cohls_model_tests.pdb"
  "cohls_model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
