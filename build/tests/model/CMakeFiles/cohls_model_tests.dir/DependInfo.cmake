
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/model/test_assay.cpp" "tests/model/CMakeFiles/cohls_model_tests.dir/test_assay.cpp.o" "gcc" "tests/model/CMakeFiles/cohls_model_tests.dir/test_assay.cpp.o.d"
  "/root/repo/tests/model/test_compatibility.cpp" "tests/model/CMakeFiles/cohls_model_tests.dir/test_compatibility.cpp.o" "gcc" "tests/model/CMakeFiles/cohls_model_tests.dir/test_compatibility.cpp.o.d"
  "/root/repo/tests/model/test_components.cpp" "tests/model/CMakeFiles/cohls_model_tests.dir/test_components.cpp.o" "gcc" "tests/model/CMakeFiles/cohls_model_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/model/test_cost_model.cpp" "tests/model/CMakeFiles/cohls_model_tests.dir/test_cost_model.cpp.o" "gcc" "tests/model/CMakeFiles/cohls_model_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/model/test_device.cpp" "tests/model/CMakeFiles/cohls_model_tests.dir/test_device.cpp.o" "gcc" "tests/model/CMakeFiles/cohls_model_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/model/test_operation.cpp" "tests/model/CMakeFiles/cohls_model_tests.dir/test_operation.cpp.o" "gcc" "tests/model/CMakeFiles/cohls_model_tests.dir/test_operation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/cohls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
