# Empty dependencies file for cohls_chip_tests.
# This may be replaced when dependencies are built.
