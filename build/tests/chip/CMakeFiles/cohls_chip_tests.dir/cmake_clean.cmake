file(REMOVE_RECURSE
  "CMakeFiles/cohls_chip_tests.dir/test_resources.cpp.o"
  "CMakeFiles/cohls_chip_tests.dir/test_resources.cpp.o.d"
  "cohls_chip_tests"
  "cohls_chip_tests.pdb"
  "cohls_chip_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_chip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
