# CMake generated Testfile for 
# Source directory: /root/repo/tests/chip
# Build directory: /root/repo/build/tests/chip
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/chip/cohls_chip_tests[1]_include.cmake")
