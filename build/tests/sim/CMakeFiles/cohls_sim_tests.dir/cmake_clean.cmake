file(REMOVE_RECURSE
  "CMakeFiles/cohls_sim_tests.dir/test_runtime.cpp.o"
  "CMakeFiles/cohls_sim_tests.dir/test_runtime.cpp.o.d"
  "cohls_sim_tests"
  "cohls_sim_tests.pdb"
  "cohls_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
