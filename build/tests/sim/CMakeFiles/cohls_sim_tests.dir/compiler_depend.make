# Empty compiler generated dependencies file for cohls_sim_tests.
# This may be replaced when dependencies are built.
