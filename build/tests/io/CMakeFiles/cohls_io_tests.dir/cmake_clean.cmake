file(REMOVE_RECURSE
  "CMakeFiles/cohls_io_tests.dir/test_assay_text.cpp.o"
  "CMakeFiles/cohls_io_tests.dir/test_assay_text.cpp.o.d"
  "CMakeFiles/cohls_io_tests.dir/test_export.cpp.o"
  "CMakeFiles/cohls_io_tests.dir/test_export.cpp.o.d"
  "CMakeFiles/cohls_io_tests.dir/test_result_text.cpp.o"
  "CMakeFiles/cohls_io_tests.dir/test_result_text.cpp.o.d"
  "cohls_io_tests"
  "cohls_io_tests.pdb"
  "cohls_io_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_io_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
