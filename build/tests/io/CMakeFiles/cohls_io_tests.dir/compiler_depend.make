# Empty compiler generated dependencies file for cohls_io_tests.
# This may be replaced when dependencies are built.
