# CMake generated Testfile for 
# Source directory: /root/repo/tests/io
# Build directory: /root/repo/build/tests/io
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/io/cohls_io_tests[1]_include.cmake")
