# Empty dependencies file for cohls_layout_tests.
# This may be replaced when dependencies are built.
