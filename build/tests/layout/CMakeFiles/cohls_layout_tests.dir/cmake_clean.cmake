file(REMOVE_RECURSE
  "CMakeFiles/cohls_layout_tests.dir/test_placement.cpp.o"
  "CMakeFiles/cohls_layout_tests.dir/test_placement.cpp.o.d"
  "CMakeFiles/cohls_layout_tests.dir/test_transport_from_layout.cpp.o"
  "CMakeFiles/cohls_layout_tests.dir/test_transport_from_layout.cpp.o.d"
  "cohls_layout_tests"
  "cohls_layout_tests.pdb"
  "cohls_layout_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_layout_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
