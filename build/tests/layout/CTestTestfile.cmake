# CMake generated Testfile for 
# Source directory: /root/repo/tests/layout
# Build directory: /root/repo/build/tests/layout
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/layout/cohls_layout_tests[1]_include.cmake")
