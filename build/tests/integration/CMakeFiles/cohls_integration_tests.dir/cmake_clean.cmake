file(REMOVE_RECURSE
  "CMakeFiles/cohls_integration_tests.dir/test_end_to_end.cpp.o"
  "CMakeFiles/cohls_integration_tests.dir/test_end_to_end.cpp.o.d"
  "CMakeFiles/cohls_integration_tests.dir/test_table_shapes.cpp.o"
  "CMakeFiles/cohls_integration_tests.dir/test_table_shapes.cpp.o.d"
  "cohls_integration_tests"
  "cohls_integration_tests.pdb"
  "cohls_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cohls_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
