# Empty compiler generated dependencies file for cohls_integration_tests.
# This may be replaced when dependencies are built.
