# Empty compiler generated dependencies file for bench_chip_report.
# This may be replaced when dependencies are built.
