file(REMOVE_RECURSE
  "CMakeFiles/bench_chip_report.dir/bench_chip_report.cpp.o"
  "CMakeFiles/bench_chip_report.dir/bench_chip_report.cpp.o.d"
  "bench_chip_report"
  "bench_chip_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chip_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
