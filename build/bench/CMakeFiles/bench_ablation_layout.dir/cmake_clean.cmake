file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_layout.dir/bench_ablation_layout.cpp.o"
  "CMakeFiles/bench_ablation_layout.dir/bench_ablation_layout.cpp.o.d"
  "bench_ablation_layout"
  "bench_ablation_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
