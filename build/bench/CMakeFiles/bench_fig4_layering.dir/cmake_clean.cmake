file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_layering.dir/bench_fig4_layering.cpp.o"
  "CMakeFiles/bench_fig4_layering.dir/bench_fig4_layering.cpp.o.d"
  "bench_fig4_layering"
  "bench_fig4_layering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_layering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
