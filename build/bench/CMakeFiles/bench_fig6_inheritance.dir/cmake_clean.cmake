file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_inheritance.dir/bench_fig6_inheritance.cpp.o"
  "CMakeFiles/bench_fig6_inheritance.dir/bench_fig6_inheritance.cpp.o.d"
  "bench_fig6_inheritance"
  "bench_fig6_inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
