file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mincut.dir/bench_fig5_mincut.cpp.o"
  "CMakeFiles/bench_fig5_mincut.dir/bench_fig5_mincut.cpp.o.d"
  "bench_fig5_mincut"
  "bench_fig5_mincut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
