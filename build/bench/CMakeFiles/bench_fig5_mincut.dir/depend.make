# Empty dependencies file for bench_fig5_mincut.
# This may be replaced when dependencies are built.
