file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transport.dir/bench_ablation_transport.cpp.o"
  "CMakeFiles/bench_ablation_transport.dir/bench_ablation_transport.cpp.o.d"
  "bench_ablation_transport"
  "bench_ablation_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
