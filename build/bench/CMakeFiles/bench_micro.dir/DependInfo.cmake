
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cpp" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cohls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cohls_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/assays/CMakeFiles/cohls_assays.dir/DependInfo.cmake"
  "/root/repo/build/src/milp/CMakeFiles/cohls_milp.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/cohls_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/cohls_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/schedule/CMakeFiles/cohls_schedule.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cohls_model.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cohls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cohls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
