# Empty compiler generated dependencies file for bench_ablation_slots.
# This may be replaced when dependencies are built.
