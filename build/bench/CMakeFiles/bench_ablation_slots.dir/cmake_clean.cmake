file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slots.dir/bench_ablation_slots.cpp.o"
  "CMakeFiles/bench_ablation_slots.dir/bench_ablation_slots.cpp.o.d"
  "bench_ablation_slots"
  "bench_ablation_slots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
